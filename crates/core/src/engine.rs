//! The unified execution engine: one dispatch point for every corner of
//! the paper's exploratory cube.
//!
//! A [`Configuration`] names a corner — device × update strategy ×
//! sparsity × timing source — and [`Engine::run`] routes it to the right
//! optimizer, so benches and tools never hand-match on devices or timing
//! modes. [`Engine::run_observed`] additionally streams per-epoch
//! hardware counters to an [`crate::EpochObserver`] while the run is in
//! flight.
//!
//! ```
//! use sgd_core::{Configuration, DeviceKind, Engine, RunOptions, Strategy};
//! use sgd_models::{lr, Batch, Examples};
//! use sgd_linalg::Matrix;
//!
//! let x = Matrix::from_fn(64, 4, |i, j| (((i + j) % 3) as f64 - 1.0));
//! let y: Vec<f64> = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
//! let batch = Batch::new(Examples::Dense(&x), &y);
//! let task = lr(4);
//!
//! let cfg = Configuration::new(DeviceKind::Gpu, Strategy::Hogwild);
//! let opts = RunOptions { max_epochs: 3, ..Default::default() };
//! let report = Engine::run(&cfg, &task, &batch, 0.1, &opts);
//! assert_eq!(report.metrics.epochs.len(), report.trace.epochs());
//! ```

use sgd_models::{Batch, Examples, Task};

use crate::config::{DeviceKind, RunOptions};
use crate::gpu_async::{gpu_hogbatch_observed, gpu_hogwild_observed, GpuAsyncOptions};
use crate::hogbatch::{hogbatch_observed, make_batches};
use crate::hogwild::hogwild_observed;
use crate::metrics::{EpochObserver, NullObserver};
use crate::modeled::{
    hogbatch_modeled_observed, hogwild_modeled_observed, sync_modeled_observed, CpuModelConfig,
};
use crate::replication::{replicated_observed, Replication};
use crate::report::RunReport;
use crate::sync::sync_observed;

/// Wall-clock vs modeled time, as selected on a bench command line.
///
/// This is the user-facing flag; [`TimingMode::timing`] resolves it to a
/// concrete [`Timing`] so callers never match on the mode themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingMode {
    /// Report modeled seconds for CPU runs (the default: reproduces the
    /// paper's machine regardless of the host).
    Model,
    /// Report the host's wall-clock seconds.
    Wall,
}

impl TimingMode {
    /// Resolves the mode to a [`Timing`], building the CPU model
    /// configuration lazily (only the `Model` arm evaluates `model`).
    pub fn timing(self, model: impl FnOnce() -> CpuModelConfig) -> Timing {
        match self {
            TimingMode::Model => Timing::Modeled(model()),
            TimingMode::Wall => Timing::Wall,
        }
    }
}

/// Where a run's reported seconds come from.
#[derive(Clone, Debug)]
pub enum Timing {
    /// The host's wall clock (GPU runs always use the simulator clock).
    Wall,
    /// The analytical CPU model of the given machine.
    Modeled(CpuModelConfig),
}

/// The update-strategy axis of the cube.
#[derive(Clone, Debug)]
pub enum Strategy {
    /// Synchronous (full-batch) gradient descent.
    Sync,
    /// Asynchronous incremental SGD (Hogwild on CPU, warp-Hogwild on the
    /// GPU; one CPU thread is exactly sequential incremental SGD).
    Hogwild,
    /// Hogwild over replicated models (DimmWitted's replication axis);
    /// CPU wall-clock only.
    ReplicatedHogwild {
        /// Model-replication strategy.
        replication: Replication,
    },
    /// Asynchronous mini-batch SGD over a shared model; requires dense
    /// examples (the MLP path).
    Hogbatch {
        /// Rows per mini-batch (clamped to the dataset size).
        batch_size: usize,
    },
}

/// The sparsity axis: what representation the configuration expects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sparsity {
    /// Accept whatever representation the batch carries.
    Auto,
    /// Require dense examples.
    Dense,
    /// Require CSR examples.
    Sparse,
}

/// One corner of the paper's 2×2×2 cube, ready to dispatch.
#[derive(Clone, Debug)]
pub struct Configuration {
    /// Architecture axis.
    pub device: DeviceKind,
    /// Update-strategy axis.
    pub strategy: Strategy,
    /// Sparsity axis (validated against the batch at dispatch).
    pub sparsity: Sparsity,
    /// Timing source for the reported seconds.
    pub timing: Timing,
    /// Knobs for the GPU asynchronous kernels (ignored on CPU devices).
    pub gpu_async: GpuAsyncOptions,
}

impl Configuration {
    /// A wall-clock configuration with automatic sparsity.
    pub fn new(device: DeviceKind, strategy: Strategy) -> Self {
        Configuration {
            device,
            strategy,
            sparsity: Sparsity::Auto,
            timing: Timing::Wall,
            gpu_async: GpuAsyncOptions::default(),
        }
    }

    /// Sets the timing source.
    pub fn with_timing(mut self, timing: Timing) -> Self {
        self.timing = timing;
        self
    }

    /// Sets the expected sparsity.
    pub fn with_sparsity(mut self, sparsity: Sparsity) -> Self {
        self.sparsity = sparsity;
        self
    }

    /// Sets the GPU asynchronous-kernel options.
    pub fn with_gpu_async(mut self, gpu_async: GpuAsyncOptions) -> Self {
        self.gpu_async = gpu_async;
        self
    }
}

/// Why a [`Configuration`] cannot run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// Hogwild-family strategies update one example at a time and need the
    /// task's pointwise loss; the task does not expose one (MLPs).
    StrategyRequiresPointwiseLoss,
    /// The configuration's [`Sparsity`] does not match the batch.
    SparsityMismatch,
    /// The corner is outside the cube (e.g. modeled GPU timing).
    UnsupportedConfiguration {
        /// What made the configuration invalid.
        detail: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::StrategyRequiresPointwiseLoss => {
                write!(f, "strategy requires a task with a pointwise loss (linear tasks only)")
            }
            EngineError::SparsityMismatch => {
                write!(f, "configured sparsity does not match the batch representation")
            }
            EngineError::UnsupportedConfiguration { detail } => {
                write!(f, "unsupported configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The dispatcher: routes a [`Configuration`] to the optimizer that
/// implements it.
pub struct Engine;

impl Engine {
    /// Runs the configuration, panicking on an invalid one (the bench
    /// harness treats an invalid corner as a programming error).
    pub fn run<T: Task>(
        cfg: &Configuration,
        task: &T,
        batch: &Batch<'_>,
        alpha: f64,
        opts: &RunOptions,
    ) -> RunReport {
        Self::try_run(cfg, task, batch, alpha, opts)
            // analyzer: allow(panic-freedom) -- documented panicking API; try_run is the Result form
            .unwrap_or_else(|e| panic!("invalid SGD configuration: {e}"))
    }

    /// Runs the configuration, reporting invalid corners as errors.
    pub fn try_run<T: Task>(
        cfg: &Configuration,
        task: &T,
        batch: &Batch<'_>,
        alpha: f64,
        opts: &RunOptions,
    ) -> Result<RunReport, EngineError> {
        Self::try_run_observed(cfg, task, batch, alpha, opts, &mut NullObserver)
    }

    /// Like [`Engine::run`], streaming per-epoch metrics to `obs`.
    pub fn run_observed<T: Task>(
        cfg: &Configuration,
        task: &T,
        batch: &Batch<'_>,
        alpha: f64,
        opts: &RunOptions,
        obs: &mut dyn EpochObserver,
    ) -> RunReport {
        Self::try_run_observed(cfg, task, batch, alpha, opts, obs)
            // analyzer: allow(panic-freedom) -- documented panicking API; try_run_observed is the Result form
            .unwrap_or_else(|e| panic!("invalid SGD configuration: {e}"))
    }

    /// Like [`Engine::try_run`], streaming per-epoch metrics to `obs`.
    pub fn try_run_observed<T: Task>(
        cfg: &Configuration,
        task: &T,
        batch: &Batch<'_>,
        alpha: f64,
        opts: &RunOptions,
        obs: &mut dyn EpochObserver,
    ) -> Result<RunReport, EngineError> {
        validate(cfg, task, batch)?;
        // The whole run executes under the configured kernel tier: seq
        // kernels read the ambient tier directly, and every pooled
        // dispatch installs it on the workers alongside the width.
        sgd_linalg::pool::with_tier(opts.tier, || dispatch(cfg, task, batch, alpha, opts, obs))
    }

    /// Grid-searches the step size for one configuration: runs every value
    /// in `grid` and keeps the report that reaches 1 % above `optimum`
    /// fastest (see [`crate::grid_search`]). Panics on an invalid
    /// configuration.
    pub fn grid_search<T: Task>(
        cfg: &Configuration,
        task: &T,
        batch: &Batch<'_>,
        optimum: f64,
        grid: &[f64],
        opts: &RunOptions,
    ) -> RunReport {
        crate::report::grid_search(optimum, grid, |alpha| {
            Engine::run(cfg, task, batch, alpha, opts)
        })
    }
}

fn validate<T: Task>(cfg: &Configuration, task: &T, batch: &Batch<'_>) -> Result<(), EngineError> {
    let dense = matches!(batch.x, Examples::Dense(_));
    match cfg.sparsity {
        Sparsity::Auto => {}
        Sparsity::Dense if dense => {}
        Sparsity::Sparse if !dense => {}
        _ => return Err(EngineError::SparsityMismatch),
    }

    if let Timing::Modeled(mc) = &cfg.timing {
        if cfg.device == DeviceKind::Gpu {
            return Err(EngineError::UnsupportedConfiguration {
                detail: "modeled timing covers CPU devices; GPU time is always simulated".into(),
            });
        }
        if mc.device() != cfg.device {
            return Err(EngineError::UnsupportedConfiguration {
                detail: format!(
                    "CPU model describes {} but the configuration names {}",
                    mc.device().label(),
                    cfg.device.label()
                ),
            });
        }
    }

    match &cfg.strategy {
        Strategy::Sync => {}
        Strategy::Hogwild => {
            if task.pointwise_loss().is_none() {
                return Err(EngineError::StrategyRequiresPointwiseLoss);
            }
        }
        Strategy::ReplicatedHogwild { .. } => {
            if task.pointwise_loss().is_none() {
                return Err(EngineError::StrategyRequiresPointwiseLoss);
            }
            if cfg.device == DeviceKind::Gpu {
                return Err(EngineError::UnsupportedConfiguration {
                    detail: "model replication is a NUMA CPU technique".into(),
                });
            }
            if matches!(cfg.timing, Timing::Modeled(_)) {
                return Err(EngineError::UnsupportedConfiguration {
                    detail: "replicated Hogwild has no modeled-time implementation".into(),
                });
            }
        }
        Strategy::Hogbatch { .. } => {
            if !dense {
                return Err(EngineError::UnsupportedConfiguration {
                    detail: "Hogbatch mini-batches require dense examples".into(),
                });
            }
            if batch.n() == 0 {
                return Err(EngineError::UnsupportedConfiguration {
                    detail: "Hogbatch needs at least one example".into(),
                });
            }
        }
    }
    Ok(())
}

fn dispatch<T: Task>(
    cfg: &Configuration,
    task: &T,
    batch: &Batch<'_>,
    alpha: f64,
    opts: &RunOptions,
    obs: &mut dyn EpochObserver,
) -> Result<RunReport, EngineError> {
    // `validate` runs first, so the error arms below are unreachable in
    // practice — but they stay typed errors, not panics, so a future
    // validate/dispatch drift degrades to an Err instead of poisoning a
    // run mid-grid-search.
    let cpu_threads = |device: DeviceKind| match device {
        DeviceKind::CpuSeq => 1,
        _ => opts.threads.max(2),
    };
    let report = match &cfg.strategy {
        Strategy::Sync => match &cfg.timing {
            Timing::Wall => sync_observed(task, batch, cfg.device, alpha, opts, obs),
            Timing::Modeled(mc) => sync_modeled_observed(task, batch, mc, alpha, opts, obs),
        },
        Strategy::Hogwild => {
            let Some(loss) = task.pointwise_loss() else {
                return Err(EngineError::StrategyRequiresPointwiseLoss);
            };
            match (&cfg.timing, cfg.device) {
                (Timing::Wall, DeviceKind::Gpu) => {
                    gpu_hogwild_observed(task, loss, batch, alpha, opts, &cfg.gpu_async, obs)
                }
                (Timing::Wall, dev) => {
                    hogwild_observed(task, loss, batch, cpu_threads(dev), alpha, opts, obs)
                }
                (Timing::Modeled(mc), _) => {
                    hogwild_modeled_observed(task, loss, batch, mc, alpha, opts, obs)
                }
            }
        }
        Strategy::ReplicatedHogwild { replication } => {
            let Some(loss) = task.pointwise_loss() else {
                return Err(EngineError::StrategyRequiresPointwiseLoss);
            };
            replicated_observed(
                task,
                loss,
                batch,
                cpu_threads(cfg.device),
                alpha,
                *replication,
                opts,
                obs,
            )
        }
        Strategy::Hogbatch { batch_size } => {
            let Examples::Dense(x) = batch.x else {
                return Err(EngineError::UnsupportedConfiguration {
                    detail: "Hogbatch mini-batches require dense examples".into(),
                });
            };
            let size = (*batch_size).min(batch.n()).max(1);
            let owned = make_batches(x, batch.y, size);
            let batches: Vec<Batch<'_>> =
                owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
            match (&cfg.timing, cfg.device) {
                (Timing::Wall, DeviceKind::Gpu) => {
                    gpu_hogbatch_observed(task, batch, &batches, alpha, opts, &cfg.gpu_async, obs)
                }
                (Timing::Wall, dev) => {
                    hogbatch_observed(task, batch, &batches, cpu_threads(dev), alpha, opts, obs)
                }
                (Timing::Modeled(mc), _) => {
                    hogbatch_modeled_observed(task, batch, &batches, mc, alpha, opts, obs)
                }
            }
        }
    };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EpochMetrics;
    use sgd_linalg::{CsrMatrix, Matrix, Scalar};
    use sgd_models::{lr, MlpTask};

    fn dense() -> (Matrix, Vec<Scalar>) {
        let x = Matrix::from_fn(64, 6, |i, j| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            s * (((i * 3 + j) % 5) as Scalar + 1.0) / 5.0
        });
        let y = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        (x, y)
    }

    fn sparse() -> (CsrMatrix, Vec<Scalar>) {
        let entries: Vec<Vec<(u32, Scalar)>> =
            (0..64).map(|i| vec![((i % 16) as u32, if i % 2 == 0 { 1.0 } else { -1.0 })]).collect();
        let y = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        (CsrMatrix::from_row_entries(64, 16, &entries), y)
    }

    #[test]
    fn timing_mode_resolves_lazily() {
        let t = TimingMode::Wall.timing(|| unreachable!("Wall must not build a model"));
        assert!(matches!(t, Timing::Wall));
        let t = TimingMode::Model.timing(|| CpuModelConfig::paper_machine(4));
        assert!(matches!(t, Timing::Modeled(mc) if mc.threads == 4));
    }

    #[test]
    fn modeled_gpu_is_rejected() {
        let (x, y) = dense();
        let b = Batch::new(Examples::Dense(&x), &y);
        let cfg = Configuration::new(DeviceKind::Gpu, Strategy::Sync)
            .with_timing(Timing::Modeled(CpuModelConfig::paper_machine(4)));
        let err = Engine::try_run(&cfg, &lr(6), &b, 0.1, &RunOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::UnsupportedConfiguration { .. }), "{err}");
    }

    #[test]
    fn model_thread_count_must_match_device() {
        let (x, y) = dense();
        let b = Batch::new(Examples::Dense(&x), &y);
        // A 4-thread model is CpuPar; naming CpuSeq is a contradiction.
        let cfg = Configuration::new(DeviceKind::CpuSeq, Strategy::Sync)
            .with_timing(Timing::Modeled(CpuModelConfig::paper_machine(4)));
        let err = Engine::try_run(&cfg, &lr(6), &b, 0.1, &RunOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::UnsupportedConfiguration { .. }));
    }

    #[test]
    fn hogwild_needs_a_pointwise_loss() {
        let (x, y) = dense();
        let b = Batch::new(Examples::Dense(&x), &y);
        let mlp = MlpTask::new(vec![6, 4, 2], 1);
        let cfg = Configuration::new(DeviceKind::CpuSeq, Strategy::Hogwild);
        let err = Engine::try_run(&cfg, &mlp, &b, 0.1, &RunOptions::default()).unwrap_err();
        assert_eq!(err, EngineError::StrategyRequiresPointwiseLoss);
    }

    #[test]
    fn sparsity_contract_is_enforced() {
        let (x, y) = dense();
        let b = Batch::new(Examples::Dense(&x), &y);
        let cfg =
            Configuration::new(DeviceKind::CpuSeq, Strategy::Sync).with_sparsity(Sparsity::Sparse);
        let err = Engine::try_run(&cfg, &lr(6), &b, 0.1, &RunOptions::default()).unwrap_err();
        assert_eq!(err, EngineError::SparsityMismatch);
        let ok =
            Configuration::new(DeviceKind::CpuSeq, Strategy::Sync).with_sparsity(Sparsity::Dense);
        assert!(Engine::try_run(&ok, &lr(6), &b, 0.1, &RunOptions::default()).is_ok());
    }

    #[test]
    fn hogbatch_rejects_sparse_examples() {
        let (xs, y) = sparse();
        let b = Batch::new(Examples::Sparse(&xs), &y);
        let cfg = Configuration::new(DeviceKind::CpuSeq, Strategy::Hogbatch { batch_size: 8 });
        let err = Engine::try_run(&cfg, &lr(16), &b, 0.1, &RunOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::UnsupportedConfiguration { .. }));
    }

    #[test]
    fn replication_is_cpu_wall_only() {
        let (xs, y) = sparse();
        let b = Batch::new(Examples::Sparse(&xs), &y);
        let strat = || Strategy::ReplicatedHogwild { replication: Replication::PerCore };
        let gpu = Configuration::new(DeviceKind::Gpu, strat());
        assert!(Engine::try_run(&gpu, &lr(16), &b, 0.1, &RunOptions::default()).is_err());
        let modeled = Configuration::new(DeviceKind::CpuPar, strat())
            .with_timing(Timing::Modeled(CpuModelConfig::paper_machine(4)));
        assert!(Engine::try_run(&modeled, &lr(16), &b, 0.1, &RunOptions::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid SGD configuration")]
    fn run_panics_on_invalid_corner() {
        let (x, y) = dense();
        let b = Batch::new(Examples::Dense(&x), &y);
        let mlp = MlpTask::new(vec![6, 4, 2], 1);
        let cfg = Configuration::new(DeviceKind::CpuSeq, Strategy::Hogwild);
        let _ = Engine::run(&cfg, &mlp, &b, 0.1, &RunOptions::default());
    }

    #[test]
    fn observer_sees_every_epoch() {
        struct Count(Vec<usize>);
        impl crate::metrics::EpochObserver for Count {
            fn on_epoch(&mut self, m: &EpochMetrics) {
                self.0.push(m.epoch);
            }
        }
        let (xs, y) = sparse();
        let b = Batch::new(Examples::Sparse(&xs), &y);
        let cfg = Configuration::new(DeviceKind::CpuSeq, Strategy::Hogwild);
        let opts = RunOptions { max_epochs: 4, ..Default::default() };
        let mut obs = Count(Vec::new());
        let rep = Engine::run_observed(&cfg, &lr(16), &b, 0.3, &opts, &mut obs);
        assert_eq!(obs.0.len(), rep.trace.epochs());
        assert_eq!(obs.0, (1..=rep.trace.epochs()).collect::<Vec<_>>());
    }

    #[test]
    fn grid_search_accepts_a_configuration() {
        let (xs, y) = sparse();
        let b = Batch::new(Examples::Sparse(&xs), &y);
        let cfg = Configuration::new(DeviceKind::CpuSeq, Strategy::Hogwild);
        let opts = RunOptions { max_epochs: 10, ..Default::default() };
        let rep = Engine::grid_search(&cfg, &lr(16), &b, 0.0, &[0.1, 0.5], &opts);
        assert!(rep.step_size == 0.1 || rep.step_size == 0.5);
        assert!(rep.best_loss().is_finite());
    }

    #[test]
    fn gpu_hogbatch_corner_dispatches() {
        let (x, y) = dense();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = MlpTask::new(vec![6, 4, 2], 1);
        let cfg = Configuration::new(DeviceKind::Gpu, Strategy::Hogbatch { batch_size: 16 });
        let opts = RunOptions { max_epochs: 2, ..Default::default() };
        let rep = Engine::run(&cfg, &task, &b, 0.5, &opts);
        assert_eq!(rep.device, DeviceKind::Gpu);
        assert_eq!(rep.update_conflicts(), Some(0));
        assert!(rep.metrics.total_simulated_cycles().unwrap_or(0.0) > 0.0);
    }
}
