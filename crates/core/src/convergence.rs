//! The paper's convergence protocol.
//!
//! All configurations start from the same model; the optimal loss is the
//! lowest loss any configuration reaches in a long reference run
//! (following DimmWitted, which the paper adopts); convergence times are
//! reported at 10 %, 5 %, 2 % and 1 % above that optimum; loss-evaluation
//! time is excluded from all timings.

use sgd_linalg::{CpuExec, Scalar};
use sgd_models::{Batch, Task};

/// The paper's convergence thresholds (fractions above the optimum).
pub const THRESHOLDS: [f64; 4] = [0.10, 0.05, 0.02, 0.01];

/// Loss value corresponding to "within 1 % of `optimum`".
pub(crate) fn threshold_loss_1pct(optimum: f64) -> f64 {
    threshold_loss(optimum, 0.01)
}

/// Loss value corresponding to "within `frac` of `optimum`". For a
/// degenerate zero optimum the band falls back to an absolute `frac`.
pub fn threshold_loss(optimum: f64, frac: f64) -> f64 {
    if optimum.abs() < 1e-12 {
        frac
    } else {
        optimum * (1.0 + frac)
    }
}

/// The loss trajectory of one run: `(seconds, loss)` after each epoch,
/// with epoch 0 recorded at time 0 before any update.
#[derive(Clone, Debug, Default)]
pub struct LossTrace {
    points: Vec<(f64, Scalar)>,
}

impl LossTrace {
    /// An empty trace.
    pub fn new() -> Self {
        LossTrace::default()
    }

    /// Appends an epoch-end observation.
    ///
    /// # Panics
    /// Panics if time runs backwards.
    pub fn push(&mut self, secs: f64, loss: Scalar) {
        if let Some(&(t, _)) = self.points.last() {
            assert!(secs >= t, "time must be monotone ({secs} after {t})");
        }
        self.points.push((secs, loss));
    }

    /// The `(seconds, loss)` points.
    pub fn points(&self) -> &[(f64, Scalar)] {
        &self.points
    }

    /// Number of epochs recorded (excluding the initial point).
    pub fn epochs(&self) -> usize {
        self.points.len().saturating_sub(1)
    }

    /// Lowest loss observed.
    pub fn best_loss(&self) -> Option<Scalar> {
        self.points.iter().map(|&(_, l)| l).fold(None, |acc, l| match acc {
            None => Some(l),
            Some(b) => Some(b.min(l)),
        })
    }

    /// First time at which the loss reached `target` (seconds), if ever.
    pub fn time_to_loss(&self, target: Scalar) -> Option<f64> {
        self.points.iter().find(|&&(_, l)| l <= target).map(|&(t, _)| t)
    }

    /// First epoch index at which the loss reached `target`, if ever.
    pub fn epochs_to_loss(&self, target: Scalar) -> Option<usize> {
        self.points.iter().position(|&(_, l)| l <= target)
    }

    /// `true` when the loss improved by less than `rel_tol` (relatively)
    /// over the last `window` epochs — used to cut off step sizes that
    /// have stopped making progress.
    pub fn plateaued(&self, window: usize, rel_tol: f64) -> bool {
        let n = self.points.len();
        if n < window + 1 {
            return false;
        }
        let recent = self.points[n - 1].1;
        let past = self.points[n - 1 - window].1;
        if !recent.is_finite() || !past.is_finite() {
            return false;
        }
        (past - recent) < rel_tol * past.abs().max(1e-12)
    }

    /// Convergence summary against an optimum: time and epochs for each of
    /// the paper's four thresholds.
    pub fn summarize(&self, optimum: f64) -> ConvergenceSummary {
        let mut rows = Vec::with_capacity(THRESHOLDS.len());
        for &frac in &THRESHOLDS {
            let target = threshold_loss(optimum, frac);
            rows.push((frac, self.time_to_loss(target), self.epochs_to_loss(target)));
        }
        ConvergenceSummary { optimum, rows }
    }
}

/// Time/epoch-to-convergence at each threshold.
#[derive(Clone, Debug)]
pub struct ConvergenceSummary {
    /// The reference optimal loss.
    pub optimum: f64,
    /// `(threshold fraction, seconds, epochs)`; `None` = did not converge
    /// (the paper's `∞`).
    pub rows: Vec<(f64, Option<f64>, Option<usize>)>,
}

impl ConvergenceSummary {
    /// Seconds to reach 1 % above the optimum, if reached.
    pub fn time_to_1pct(&self) -> Option<f64> {
        // analyzer: allow(float-discipline) -- 0.01 is an exact table key copied verbatim from THRESHOLDS, never computed
        self.rows.iter().find(|r| r.0 == 0.01).and_then(|r| r.1)
    }

    /// Epochs to reach 1 % above the optimum, if reached.
    pub fn epochs_to_1pct(&self) -> Option<usize> {
        // analyzer: allow(float-discipline) -- 0.01 is an exact table key copied verbatim from THRESHOLDS, never computed
        self.rows.iter().find(|r| r.0 == 0.01).and_then(|r| r.2)
    }
}

/// Finds the reference optimal loss for a task/batch by running full-batch
/// gradient descent for `epochs` epochs at every step size in the grid and
/// taking the lowest loss observed (the paper runs all configurations "for
/// a full day" and keeps the minimum; this is the scaled equivalent).
pub fn reference_optimum<T: Task>(task: &T, batch: &Batch<'_>, epochs: usize) -> f64 {
    let mut e = CpuExec::par();
    let mut best = f64::INFINITY;
    for &alpha in &crate::report::step_size_grid() {
        let mut w = task.init_model();
        let mut g = vec![0.0; task.dim()];
        let mut prev = task.loss(&mut e, batch, &w);
        best = best.min(prev);
        let mut since_improvement = 0usize;
        for _ in 0..epochs {
            task.gradient(&mut e, batch, &w, &mut g);
            for (wi, gi) in w.iter_mut().zip(&g) {
                *wi -= alpha * gi;
            }
            let l = task.loss(&mut e, batch, &w);
            if !l.is_finite() || l > prev * 4.0 {
                break; // diverged at this step size
            }
            // Cut off step sizes that have flat-lined (saves most of the
            // grid's budget without meaningfully moving the minimum found).
            if l > best - 1e-5 * best.abs().max(1e-12) {
                since_improvement += 1;
                if since_improvement > 30 {
                    break;
                }
            } else {
                since_improvement = 0;
            }
            best = best.min(l);
            prev = l;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgd_linalg::Matrix;
    use sgd_models::{lr, Examples};

    #[test]
    fn trace_thresholds() {
        let mut t = LossTrace::new();
        t.push(0.0, 1.0);
        t.push(1.0, 0.5);
        t.push(2.0, 0.2);
        t.push(3.0, 0.101);
        t.push(4.0, 0.1005);
        // optimum 0.1: 1 % band is 0.101.
        assert_eq!(t.time_to_loss(threshold_loss(0.1, 0.01)), Some(3.0));
        assert_eq!(t.epochs_to_loss(threshold_loss(0.1, 0.01)), Some(3));
        assert_eq!(t.time_to_loss(0.05), None);
        assert_eq!(t.epochs(), 4);
        assert_eq!(t.best_loss(), Some(0.1005));
    }

    #[test]
    fn summary_orders_thresholds() {
        let mut t = LossTrace::new();
        t.push(0.0, 10.0);
        for i in 1..=100 {
            t.push(i as f64, 10.0 / (i as f64));
        }
        let s = t.summarize(0.1);
        // Looser thresholds are reached no later than tighter ones.
        let times: Vec<f64> = s.rows.iter().map(|r| r.1.expect("converged")).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        assert!(s.time_to_1pct().is_some());
    }

    #[test]
    fn zero_optimum_uses_absolute_band() {
        assert_eq!(threshold_loss(0.0, 0.05), 0.05);
        assert!((threshold_loss(2.0, 0.05) - 2.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn trace_rejects_backwards_time() {
        let mut t = LossTrace::new();
        t.push(1.0, 1.0);
        t.push(0.5, 0.9);
    }

    #[test]
    fn plateau_detection() {
        let mut t = LossTrace::new();
        t.push(0.0, 1.0);
        for i in 1..=20 {
            t.push(i as f64, 1.0 / (1.0 + i as f64)); // still improving
        }
        assert!(!t.plateaued(10, 1e-3));
        for i in 21..=60 {
            t.push(i as f64, 0.05); // flat
        }
        assert!(t.plateaued(10, 1e-3));
        // Window larger than the trace: never plateaued.
        let mut s = LossTrace::new();
        s.push(0.0, 1.0);
        assert!(!s.plateaued(10, 1e-3));
    }

    #[test]
    fn reference_optimum_beats_initial_loss() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.9, 0.1], &[-1.0, 0.2], &[-0.8, -0.1]]);
        let y = vec![1.0, 1.0, -1.0, -1.0];
        let task = lr(2);
        let batch = Batch::new(Examples::Dense(&x), &y);
        let opt = reference_optimum(&task, &batch, 50);
        // Initial loss is ln 2; the data is separable so GD gets well below.
        assert!(opt < 0.5 * (2.0f64).ln(), "optimum {opt}");
    }
}
