//! Deterministic fault injection for robustness experiments.
//!
//! The paper's asynchronous verdict leans on HOGWILD!'s claim that
//! lock-free SGD degrades gracefully under conflicting, stale, and lost
//! updates. A [`FaultPlan`] makes that claim testable: it describes a
//! reproducible set of faults — per-worker straggler delay, dropped
//! updates, stale-gradient replay, multiplicative gradient corruption, and
//! worker death at a given epoch — that every runner injects at its update
//! boundary. All per-event decisions are pure hashes of
//! `(seed, kind, epoch, index)`, so a plan replays bit-identically under
//! modeled or simulated timing regardless of thread interleaving.
//!
//! Timing semantics follow the barrier structure of each strategy:
//! synchronous runners stall on the slowest participant
//! ([`FaultPlan::sync_dilation`] = the worst straggler's slowdown), while
//! asynchronous runners only lose the straggler's share of aggregate
//! throughput ([`FaultPlan::async_dilation`]); a dead worker stalls a
//! synchronous barrier forever (the run aborts) but costs an asynchronous
//! run only that worker's partition.

use std::sync::atomic::{AtomicU64, Ordering};

/// One deliberately slow worker: every epoch of work it performs takes
/// `slowdown` times longer than a healthy worker's.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Straggler {
    /// Worker (thread / partition / warp) index the delay applies to.
    pub worker: usize,
    /// Multiplicative delay, `>= 1.0` (`1.0` = healthy).
    pub slowdown: f64,
}

/// A worker that stops processing work from `epoch` (0-based) onward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerDeath {
    /// Worker index that dies.
    pub worker: usize,
    /// First epoch the worker no longer participates in.
    pub epoch: usize,
}

/// A previously dead worker that comes back at `epoch` (0-based): the
/// elastic-membership counterpart of [`WorkerDeath`]. With a rejoin
/// configured, [`FaultPlan::worker_dead`] reports the worker dead only for
/// epochs in `[death.epoch, rejoin.epoch)`. Single-node synchronous
/// runners abort at the first stalled barrier, so a rejoin after the death
/// epoch never rescues them; the distributed parameter-server layer keeps
/// making progress on the surviving workers and readmits the worker at its
/// rejoin epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerRejoin {
    /// Worker index that rejoins (must match a [`WorkerDeath`]).
    pub worker: usize,
    /// First epoch the worker participates in again.
    pub epoch: usize,
}

/// A seeded, deterministic fault schedule carried on
/// [`crate::RunOptions`] and injected by every runner.
///
/// The default plan is empty: every runner takes its exact fault-free code
/// path, so reports are bit-identical to runs without the robustness
/// layer.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-event fault decisions (independent of the data
    /// shuffle seed).
    pub seed: u64,
    /// Deliberately slow workers.
    pub stragglers: Vec<Straggler>,
    /// Probability that an individual update is computed and then lost.
    pub drop_rate: f64,
    /// Probability that an update's gradient is computed against the
    /// epoch-start model instead of the freshest available one.
    pub stale_rate: f64,
    /// Probability that an update's step is corrupted by multiplicative
    /// noise.
    pub corrupt_rate: f64,
    /// Half-width of the corruption noise: a corrupted step is scaled by a
    /// factor drawn uniformly from `[1 - scale, 1 + scale]`.
    pub corrupt_scale: f64,
    /// Optional worker death.
    pub worker_death: Option<WorkerDeath>,
    /// Elastic rejoins (empty by default, keeping death permanent).
    pub rejoins: Vec<WorkerRejoin>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            stragglers: Vec::new(),
            drop_rate: 0.0,
            stale_rate: 0.0,
            corrupt_rate: 0.0,
            corrupt_scale: 0.5,
            worker_death: None,
            rejoins: Vec::new(),
        }
    }
}

// Domain-separation tags for the per-event hash.
const KIND_DROP: u64 = 0x1;
const KIND_STALE: u64 = 0x2;
const KIND_CORRUPT: u64 = 0x3;
const KIND_NOISE: u64 = 0x4;

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// `true` when the plan injects nothing: runners gate on this and take
    /// their unmodified code path.
    pub fn is_empty(&self) -> bool {
        self.stragglers.iter().all(|s| s.slowdown <= 1.0)
            && self.drop_rate <= 0.0
            && self.stale_rate <= 0.0
            && self.corrupt_rate <= 0.0
            && self.worker_death.is_none()
    }

    /// `Some(self)` when any fault is configured; the runners' gate.
    pub(crate) fn active(&self) -> Option<&FaultPlan> {
        if self.is_empty() {
            None
        } else {
            Some(self)
        }
    }

    /// Sets the decision seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a straggler.
    pub fn with_straggler(mut self, worker: usize, slowdown: f64) -> Self {
        self.stragglers.push(Straggler { worker, slowdown: slowdown.max(1.0) });
        self
    }

    /// Sets the dropped-update probability.
    pub fn with_drops(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the stale-gradient-replay probability.
    pub fn with_stale_reads(mut self, rate: f64) -> Self {
        self.stale_rate = rate;
        self
    }

    /// Sets the corruption probability and noise half-width.
    pub fn with_corruption(mut self, rate: f64, scale: f64) -> Self {
        self.corrupt_rate = rate;
        self.corrupt_scale = scale;
        self
    }

    /// Kills `worker` from `epoch` (0-based) onward.
    pub fn with_worker_death(mut self, worker: usize, epoch: usize) -> Self {
        self.worker_death = Some(WorkerDeath { worker, epoch });
        self
    }

    /// Brings `worker` back at `epoch` (0-based); see [`WorkerRejoin`].
    pub fn with_rejoin(mut self, worker: usize, epoch: usize) -> Self {
        self.rejoins.push(WorkerRejoin { worker, epoch });
        self
    }

    /// Deterministic uniform draw in `[0, 1)` for one `(kind, epoch,
    /// index)` event.
    fn u01(&self, kind: u64, epoch: usize, idx: usize) -> f64 {
        let h = mix64(self.seed ^ mix64(kind ^ mix64(epoch as u64 ^ mix64(idx as u64))));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Does the update for `(epoch, idx)` get computed and then lost?
    pub fn drops_update(&self, epoch: usize, idx: usize) -> bool {
        self.drop_rate > 0.0 && self.u01(KIND_DROP, epoch, idx) < self.drop_rate
    }

    /// Does the update for `(epoch, idx)` read the epoch-start model?
    pub fn stale_read(&self, epoch: usize, idx: usize) -> bool {
        self.stale_rate > 0.0 && self.u01(KIND_STALE, epoch, idx) < self.stale_rate
    }

    /// Multiplicative corruption factor for `(epoch, idx)`, if corrupted.
    pub fn corrupt_factor(&self, epoch: usize, idx: usize) -> Option<f64> {
        if self.corrupt_rate > 0.0 && self.u01(KIND_CORRUPT, epoch, idx) < self.corrupt_rate {
            let u = 2.0 * self.u01(KIND_NOISE, epoch, idx) - 1.0;
            Some(1.0 + self.corrupt_scale * u)
        } else {
            None
        }
    }

    /// First epoch `worker` participates again after dying, if a rejoin is
    /// configured for it.
    fn rejoin_epoch(&self, worker: usize) -> Option<usize> {
        self.rejoins.iter().filter(|r| r.worker == worker).map(|r| r.epoch).min()
    }

    /// Is `worker` dead during `epoch`? With a rejoin configured the dead
    /// window is `[death.epoch, rejoin.epoch)`; without one it is
    /// unbounded.
    pub fn worker_dead(&self, worker: usize, epoch: usize) -> bool {
        self.worker_death.is_some_and(|d| {
            d.worker == worker
                && epoch >= d.epoch
                && self.rejoin_epoch(worker).is_none_or(|r| epoch < r)
        })
    }

    /// Is some worker in `0..workers` dead during `epoch`?
    pub fn has_dead_worker(&self, workers: usize, epoch: usize) -> bool {
        self.worker_death.is_some_and(|d| d.worker < workers && self.worker_dead(d.worker, epoch))
    }

    /// `true` when a synchronous barrier over `workers` participants can
    /// never complete `epoch` (a participant is dead). Asynchronous
    /// runners use [`FaultPlan::has_dead_worker`] instead and keep going.
    pub fn barrier_stalled(&self, workers: usize, epoch: usize) -> bool {
        self.has_dead_worker(workers, epoch)
    }

    /// The straggler slowdown of one worker (`1.0` when healthy).
    pub fn slowdown_of(&self, worker: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.worker == worker)
            .fold(1.0, |acc, s| acc.max(s.slowdown))
    }

    /// Epoch-time dilation of a synchronous barrier over `workers`
    /// participants: the barrier waits for the slowest worker, so the
    /// whole epoch stretches by the worst slowdown.
    pub fn sync_dilation(&self, workers: usize) -> f64 {
        (0..workers.max(1)).map(|w| self.slowdown_of(w)).fold(1.0, f64::max)
    }

    /// Epoch-time dilation of an asynchronous run over `workers`
    /// independent participants: a straggler only reduces aggregate
    /// throughput by its own share, so one worker at slowdown `s` dilates
    /// the epoch by `t / (t - 1 + 1/s)` — strictly less than the
    /// synchronous `s` for `t > 1`, and approaching `t/(t-1)` as
    /// `s -> inf` (graceful degradation).
    pub fn async_dilation(&self, workers: usize) -> f64 {
        let t = workers.max(1);
        let throughput: f64 = (0..t).map(|w| 1.0 / self.slowdown_of(w)).sum();
        t as f64 / throughput
    }
}

/// Injected-fault counts for one epoch (carried per epoch in
/// [`crate::EpochMetrics`]; aggregate with
/// [`crate::RunMetrics::total_faults`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultCounters {
    /// Updates computed and then discarded.
    pub dropped_updates: u64,
    /// Gradients computed against the epoch-start model.
    pub stale_reads: u64,
    /// Updates whose step was scaled by corruption noise.
    pub corrupted_updates: u64,
    /// Workers that were dead this epoch.
    pub dead_workers: u64,
    /// Extra seconds charged to the epoch for straggler delay.
    pub straggler_delay_secs: f64,
}

impl FaultCounters {
    /// Adds another epoch's counters into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.dropped_updates += other.dropped_updates;
        self.stale_reads += other.stale_reads;
        self.corrupted_updates += other.corrupted_updates;
        self.dead_workers += other.dead_workers;
        self.straggler_delay_secs += other.straggler_delay_secs;
    }

    /// Total discrete fault events (excludes straggler delay, which is a
    /// duration rather than a count).
    pub fn total_events(&self) -> u64 {
        self.dropped_updates + self.stale_reads + self.corrupted_updates + self.dead_workers
    }
}

/// Lock-free per-epoch fault tally shared by concurrent wall-clock
/// workers; drained into a [`FaultCounters`] at each epoch boundary.
#[derive(Default)]
pub(crate) struct FaultTally {
    dropped: AtomicU64,
    stale: AtomicU64,
    corrupted: AtomicU64,
}

impl FaultTally {
    pub(crate) fn new() -> Self {
        FaultTally::default()
    }

    // The three tallies below are plain event counters, not model state:
    // losing or reordering a count would miscount faults, so they use
    // lossless RMWs rather than SharedModel's lossy `add`.
    pub(crate) fn add(&self, dropped: u64, stale: u64, corrupted: u64) {
        // analyzer: allow(atomics-discipline) -- lossless event counter, not model state
        self.dropped.fetch_add(dropped, Ordering::Relaxed);
        // analyzer: allow(atomics-discipline) -- lossless event counter, not model state
        self.stale.fetch_add(stale, Ordering::Relaxed);
        // analyzer: allow(atomics-discipline) -- lossless event counter, not model state
        self.corrupted.fetch_add(corrupted, Ordering::Relaxed);
    }

    /// Moves the tallied counts into `fc`, resetting the tally.
    pub(crate) fn drain_into(&self, fc: &mut FaultCounters) {
        // analyzer: allow(atomics-discipline) -- atomic drain-and-reset of an event counter
        fc.dropped_updates += self.dropped.swap(0, Ordering::Relaxed);
        // analyzer: allow(atomics-discipline) -- atomic drain-and-reset of an event counter
        fc.stale_reads += self.stale.swap(0, Ordering::Relaxed);
        // analyzer: allow(atomics-discipline) -- atomic drain-and-reset of an event counter
        fc.corrupted_updates += self.corrupted.swap(0, Ordering::Relaxed);
    }
}

/// Per-epoch fault decisions for a synchronous full-batch update (one
/// update per epoch, so all decisions hash on `(epoch, 0)`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SyncFaultDecision {
    /// Replay the previous epoch's gradient instead of the fresh one.
    pub stale: bool,
    /// Multiplier on the step size (`1.0` when uncorrupted).
    pub alpha_factor: f64,
    /// Discard the update entirely.
    pub dropped: bool,
}

impl SyncFaultDecision {
    pub(crate) fn none() -> Self {
        SyncFaultDecision { stale: false, alpha_factor: 1.0, dropped: false }
    }
}

/// Draws the synchronous per-epoch fault decisions and tallies them.
pub(crate) fn sync_epoch_faults(
    plan: &FaultPlan,
    epoch: usize,
    fc: &mut FaultCounters,
) -> SyncFaultDecision {
    let stale = plan.stale_read(epoch, 0);
    if stale {
        fc.stale_reads += 1;
    }
    let mut alpha_factor = 1.0;
    if let Some(f) = plan.corrupt_factor(epoch, 0) {
        alpha_factor = f;
        fc.corrupted_updates += 1;
    }
    let dropped = plan.drops_update(epoch, 0);
    if dropped {
        fc.dropped_updates += 1;
    }
    SyncFaultDecision { stale, alpha_factor, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert!(p.active().is_none());
        assert!(!p.drops_update(0, 0));
        assert!(!p.stale_read(3, 7));
        assert_eq!(p.corrupt_factor(1, 2), None);
        assert_eq!(p.sync_dilation(8), 1.0);
        assert_eq!(p.async_dilation(8), 1.0);
    }

    #[test]
    fn unit_slowdown_straggler_is_still_empty() {
        let p = FaultPlan::default().with_straggler(0, 1.0);
        assert!(p.is_empty());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::default().with_seed(7).with_drops(0.5);
        let b = FaultPlan::default().with_seed(7).with_drops(0.5);
        let c = FaultPlan::default().with_seed(8).with_drops(0.5);
        let da: Vec<bool> = (0..64).map(|i| a.drops_update(3, i)).collect();
        let db: Vec<bool> = (0..64).map(|i| b.drops_update(3, i)).collect();
        let dc: Vec<bool> = (0..64).map(|i| c.drops_update(3, i)).collect();
        assert_eq!(da, db);
        assert_ne!(da, dc);
    }

    #[test]
    fn rates_are_approximately_respected() {
        let p = FaultPlan::default().with_seed(1).with_drops(0.25);
        let hits = (0..10_000).filter(|&i| p.drops_update(0, i)).count();
        assert!((2000..3000).contains(&hits), "{hits} drops at rate 0.25");
    }

    #[test]
    fn fault_kinds_are_independent_streams() {
        let p = FaultPlan::default().with_seed(1).with_drops(0.5).with_stale_reads(0.5);
        let both = (0..1000).filter(|&i| p.drops_update(0, i) == p.stale_read(0, i)).count();
        // Correlated streams would agree (or disagree) almost always.
        assert!((300..700).contains(&both), "{both}/1000 agreements");
    }

    #[test]
    fn corruption_factor_stays_in_band() {
        let p = FaultPlan::default().with_seed(2).with_corruption(1.0, 0.5);
        for i in 0..256 {
            let f = p.corrupt_factor(1, i).expect("rate 1.0 always corrupts");
            assert!((0.5..=1.5).contains(&f), "{f}");
        }
    }

    #[test]
    fn straggler_dilation_sync_vs_async() {
        let p = FaultPlan::default().with_straggler(0, 4.0);
        // Barrier waits for the straggler: full 4x.
        assert!((p.sync_dilation(8) - 4.0).abs() < 1e-12);
        // Async only loses the straggler's throughput share.
        let a = p.async_dilation(8);
        assert!(a < 4.0, "async dilation {a} must be below the sync 4.0");
        assert!((a - 8.0 / (7.0 + 0.25)).abs() < 1e-12);
        // Single worker: no one to absorb the delay.
        assert!((p.async_dilation(1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn async_dilation_is_bounded_as_slowdown_grows() {
        let p = FaultPlan::default().with_straggler(0, 1e12);
        // Graceful degradation: losing one of t workers costs t/(t-1).
        assert!((p.async_dilation(8) - 8.0 / 7.0).abs() < 1e-6);
    }

    #[test]
    fn worker_death_takes_effect_at_its_epoch() {
        let p = FaultPlan::default().with_worker_death(2, 5);
        assert!(!p.worker_dead(2, 4));
        assert!(p.worker_dead(2, 5));
        assert!(p.worker_dead(2, 9));
        assert!(!p.worker_dead(1, 9));
        assert!(p.barrier_stalled(4, 5));
        assert!(!p.barrier_stalled(2, 5), "dead worker outside the barrier set");
    }

    #[test]
    fn rejoin_bounds_the_dead_window() {
        let p = FaultPlan::default().with_worker_death(2, 5).with_rejoin(2, 8);
        assert!(!p.worker_dead(2, 4));
        assert!(p.worker_dead(2, 5));
        assert!(p.worker_dead(2, 7));
        assert!(!p.worker_dead(2, 8), "rejoined at its epoch");
        assert!(!p.worker_dead(2, 20));
        assert!(!p.has_dead_worker(4, 8));
        assert!(p.has_dead_worker(4, 6));
        // A rejoin for a different worker changes nothing.
        let q = FaultPlan::default().with_worker_death(2, 5).with_rejoin(1, 8);
        assert!(q.worker_dead(2, 9));
        // Earliest rejoin wins when several are configured.
        let r = FaultPlan::default().with_worker_death(0, 1).with_rejoin(0, 6).with_rejoin(0, 3);
        assert!(r.worker_dead(0, 2));
        assert!(!r.worker_dead(0, 3));
    }

    #[test]
    fn tally_drains_and_resets() {
        let t = FaultTally::new();
        t.add(3, 2, 1);
        let mut fc = FaultCounters::default();
        t.drain_into(&mut fc);
        assert_eq!((fc.dropped_updates, fc.stale_reads, fc.corrupted_updates), (3, 2, 1));
        let mut fc2 = FaultCounters::default();
        t.drain_into(&mut fc2);
        assert_eq!(fc2.total_events(), 0, "drain resets the tally");
    }

    #[test]
    fn counters_merge() {
        let mut a =
            FaultCounters { dropped_updates: 1, straggler_delay_secs: 0.5, ..Default::default() };
        let b = FaultCounters {
            dropped_updates: 2,
            dead_workers: 1,
            straggler_delay_secs: 0.25,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.dropped_updates, 3);
        assert_eq!(a.dead_workers, 1);
        assert!((a.straggler_delay_secs - 0.75).abs() < 1e-12);
        assert_eq!(a.total_events(), 4);
    }
}
