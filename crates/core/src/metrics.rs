//! Per-epoch instrumentation shared by every runner.
//!
//! Each optimizer records one [`EpochMetrics`] per completed epoch into a
//! [`RunMetrics`] carried by the final [`crate::RunReport`], and forwards
//! it to an [`EpochObserver`] while the run is still in flight. Counters
//! that do not apply to a configuration are zero; rates that do not apply
//! are `NaN` (so a plot of, say, L2 hit ratios simply has no points for
//! CPU runs instead of a misleading zero line).

/// Hardware and staleness counters for one completed epoch.
#[derive(Clone, Copy, Debug)]
pub struct EpochMetrics {
    /// 1-based index of the completed epoch.
    pub epoch: usize,
    /// Optimization seconds elapsed at the end of the epoch (wall or
    /// simulated, matching the run's timing source).
    pub elapsed_secs: f64,
    /// Full-batch loss after the epoch.
    pub loss: f64,
    /// Model updates lost to write-write races during the epoch (GPU
    /// warp-Hogwild's intra-warp conflicts).
    pub update_conflicts: u64,
    /// Simulated device cycles spent in the epoch (`NaN` for wall-clock
    /// CPU runs, which have no cycle model).
    pub simulated_cycles: f64,
    /// L2 hit ratio of the epoch's simulated memory traffic (`NaN` when
    /// no cache model is in the loop).
    pub l2_hit_ratio: f64,
    /// Rounds of concurrent model updates whose participants read a stale
    /// snapshot (asynchronous CPU strategies; zero for synchronous runs).
    pub staleness_rounds: u64,
    /// Expected cache-coherency conflicts (cross-core invalidations of
    /// model cachelines) during the epoch, from the CPU cost model's
    /// conflict rate. Fractional because it is an expectation.
    pub coherency_conflicts: f64,
    /// Faults injected during the epoch by the run's
    /// [`crate::FaultPlan`] (all-zero for fault-free runs).
    pub faults: crate::faults::FaultCounters,
}

impl EpochMetrics {
    /// Metrics for a plain epoch: counters zero, simulator rates `NaN`.
    pub fn new(epoch: usize, elapsed_secs: f64, loss: f64) -> Self {
        EpochMetrics {
            epoch,
            elapsed_secs,
            loss,
            update_conflicts: 0,
            simulated_cycles: f64::NAN,
            l2_hit_ratio: f64::NAN,
            staleness_rounds: 0,
            coherency_conflicts: 0.0,
            faults: crate::faults::FaultCounters::default(),
        }
    }
}

/// All per-epoch metrics of one run, plus run-level aggregates.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// One entry per completed epoch, in order.
    pub epochs: Vec<EpochMetrics>,
    /// Total conflicting model updates, when the configuration tracks
    /// them exactly (the GPU asynchronous runners); `None` elsewhere.
    pub update_conflicts: Option<u64>,
}

impl RunMetrics {
    /// Sum of per-epoch staleness rounds.
    pub fn total_staleness_rounds(&self) -> u64 {
        self.epochs.iter().map(|e| e.staleness_rounds).sum()
    }

    /// Sum of per-epoch expected coherency conflicts.
    pub fn total_coherency_conflicts(&self) -> f64 {
        self.epochs.iter().map(|e| e.coherency_conflicts).sum()
    }

    /// Aggregate of the per-epoch injected-fault counters.
    pub fn total_faults(&self) -> crate::faults::FaultCounters {
        let mut total = crate::faults::FaultCounters::default();
        for e in &self.epochs {
            total.merge(&e.faults);
        }
        total
    }

    /// Sum of per-epoch simulated cycles (`None` when no epoch had a
    /// cycle model).
    pub fn total_simulated_cycles(&self) -> Option<f64> {
        let cycles: Vec<f64> =
            self.epochs.iter().map(|e| e.simulated_cycles).filter(|c| c.is_finite()).collect();
        if cycles.is_empty() {
            None
        } else {
            Some(cycles.iter().sum())
        }
    }
}

/// Receives each epoch's metrics while a run is in flight.
///
/// Implement this to stream per-epoch hardware counters to a logger or a
/// live plot; pass it to [`crate::Engine::run_observed`]. The same record
/// also lands in [`RunMetrics::epochs`], so a post-hoc consumer can ignore
/// the observer entirely.
pub trait EpochObserver {
    /// Called once per completed epoch, in order.
    fn on_epoch(&mut self, m: &EpochMetrics);

    /// Called whenever an epoch improves on the best finite loss seen so
    /// far in the run, with the model that achieved it — the same
    /// checkpoint the supervisor keeps for
    /// [`crate::RunReport::best_model`]. Fires *before* the corresponding
    /// [`Self::on_epoch`], at epoch granularity, so a serving layer can
    /// publish best-so-far snapshots while the run continues. The default
    /// does nothing.
    fn on_best_model(&mut self, epoch: usize, loss: f64, model: &[sgd_linalg::Scalar]) {
        let _ = (epoch, loss, model);
    }
}

/// Observer that discards everything (the default).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl EpochObserver for NullObserver {
    fn on_epoch(&mut self, _m: &EpochMetrics) {}
}

/// Accumulator the runners write through: forwards each epoch to the
/// observer and keeps the structured copy for the report. Public so
/// out-of-crate runners (the distributed layer) can drive the same
/// supervision pipeline.
pub struct Recorder<'a> {
    metrics: RunMetrics,
    observer: &'a mut dyn EpochObserver,
}

impl<'a> Recorder<'a> {
    pub fn new(observer: &'a mut dyn EpochObserver) -> Self {
        Recorder { metrics: RunMetrics::default(), observer }
    }

    pub fn record(&mut self, m: EpochMetrics) {
        self.observer.on_epoch(&m);
        self.metrics.epochs.push(m);
    }

    pub fn on_best_model(&mut self, epoch: usize, loss: f64, model: &[sgd_linalg::Scalar]) {
        self.observer.on_best_model(epoch, loss, model);
    }

    pub fn set_update_conflicts(&mut self, total: u64) {
        self.metrics.update_conflicts = Some(total);
    }

    pub fn finish(self) -> RunMetrics {
        self.metrics
    }
}

/// Per-epoch counter deltas of a simulated GPU run.
///
/// The GPU runners trace real kernel streams only for the first (cold and
/// warm) epochs, then replay the warm epoch cost. Replay advances the
/// simulated clock — so cycle deltas stay exact — but performs no memory
/// accesses, so the L2 counters freeze; this probe falls back to the last
/// traced hit ratio for replayed epochs.
pub(crate) struct GpuEpochProbe {
    cycles0: f64,
    hits0: u64,
    misses0: u64,
    warm_l2: f64,
}

impl GpuEpochProbe {
    pub(crate) fn new() -> Self {
        GpuEpochProbe { cycles0: 0.0, hits0: 0, misses0: 0, warm_l2: f64::NAN }
    }

    /// Marks the start of an epoch.
    pub(crate) fn begin(&mut self, dev: &sgd_gpusim::GpuDevice) {
        self.cycles0 = dev.elapsed_cycles();
        self.hits0 = dev.stats().l2_hits;
        self.misses0 = dev.stats().l2_misses;
    }

    /// Returns `(simulated_cycles, l2_hit_ratio)` for the epoch since
    /// [`Self::begin`].
    pub(crate) fn end(&mut self, dev: &sgd_gpusim::GpuDevice) -> (f64, f64) {
        let cycles = dev.elapsed_cycles() - self.cycles0;
        let hits = dev.stats().l2_hits - self.hits0;
        let misses = dev.stats().l2_misses - self.misses0;
        let l2 = if hits + misses > 0 {
            let r = hits as f64 / (hits + misses) as f64;
            self.warm_l2 = r;
            r
        } else {
            self.warm_l2 // replayed epoch: reuse the traced warm ratio
        };
        (cycles, l2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_forwards_and_accumulates() {
        struct Count(usize);
        impl EpochObserver for Count {
            fn on_epoch(&mut self, m: &EpochMetrics) {
                self.0 += m.epoch;
            }
        }
        let mut obs = Count(0);
        let mut rec = Recorder::new(&mut obs);
        rec.record(EpochMetrics::new(1, 0.5, 2.0));
        rec.record(EpochMetrics { staleness_rounds: 3, ..EpochMetrics::new(2, 1.0, 1.0) });
        rec.set_update_conflicts(7);
        let m = rec.finish();
        assert_eq!(obs.0, 3);
        assert_eq!(m.epochs.len(), 2);
        assert_eq!(m.total_staleness_rounds(), 3);
        assert_eq!(m.update_conflicts, Some(7));
    }

    #[test]
    fn aggregates_handle_missing_rates() {
        let mut m = RunMetrics::default();
        assert_eq!(m.total_simulated_cycles(), None);
        m.epochs.push(EpochMetrics::new(1, 0.1, 1.0));
        assert_eq!(m.total_simulated_cycles(), None, "NaN epochs have no cycle model");
        m.epochs.push(EpochMetrics { simulated_cycles: 4.0, ..EpochMetrics::new(2, 0.2, 0.9) });
        m.epochs.push(EpochMetrics { simulated_cycles: 6.0, ..EpochMetrics::new(3, 0.3, 0.8) });
        assert_eq!(m.total_simulated_cycles(), Some(10.0));
        assert_eq!(m.total_coherency_conflicts(), 0.0);
    }
}
