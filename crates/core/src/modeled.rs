//! Runners that report *modeled* CPU time (see `sgd-cpusim`).
//!
//! Functional results are computed exactly (and deterministically); the
//! reported seconds come from the performance model of the paper's
//! dual-socket Xeon instead of the host's wall clock, so the paper's
//! parallel-CPU findings reproduce even on small or single-core hosts.
//!
//! For the asynchronous runners the *statistical* effect of concurrency is
//! simulated with bounded staleness: examples (or mini-batches) are
//! processed in rounds of `threads`, every member of a round reading the
//! model as it stood when the round began — the standard analytical
//! approximation of Hogwild's delayed reads. With one thread this is
//! exactly sequential execution.

use sgd_cpusim::{CpuModelExec, CpuSpec, HogwildCost};
use sgd_linalg::{CpuExec, Exec, Scalar};
use sgd_models::{Batch, Examples, LinearLoss, LinearTask, PointwiseLoss, Task};

use crate::config::{DeviceKind, RunOptions};
use crate::convergence::LossTrace;
use crate::faults::{sync_epoch_faults, FaultCounters, FaultPlan, SyncFaultDecision};
use crate::hogwild::shuffled_order;
use crate::metrics::{EpochMetrics, EpochObserver, NullObserver, Recorder};
use crate::report::RunReport;
use crate::supervisor::Supervisor;

/// Which machine the CPU model describes and how many threads to model.
#[derive(Clone, Debug)]
pub struct CpuModelConfig {
    /// The modeled machine.
    pub spec: CpuSpec,
    /// Modeled thread count (1 = the paper's `cpu-seq` column).
    pub threads: usize,
    /// ViennaCL's GEMM result-size threshold (0 disables it — the Fig. 6
    /// ablation and the TensorFlow/Eigen comparator).
    pub gemm_parallel_threshold: usize,
}

impl CpuModelConfig {
    /// The paper's machine at `threads` threads with ViennaCL behaviour.
    pub fn paper_machine(threads: usize) -> Self {
        CpuModelConfig {
            spec: CpuSpec::xeon_e5_2660_v4_dual(),
            threads: threads.max(1),
            gemm_parallel_threshold: sgd_linalg::DEFAULT_GEMM_PARALLEL_THRESHOLD,
        }
    }

    /// Device label for reports.
    pub fn device(&self) -> DeviceKind {
        if self.threads == 1 {
            DeviceKind::CpuSeq
        } else {
            DeviceKind::CpuPar
        }
    }

    fn exec(&self) -> CpuModelExec {
        let mut e = CpuModelExec::new(self.spec.clone(), self.threads);
        e.gemm_parallel_threshold = self.gemm_parallel_threshold;
        e
    }
}

/// Synchronous (batch) gradient descent with modeled CPU time.
#[deprecated(note = "dispatch through `Engine::run` with `Strategy::Sync` and `Timing::Modeled`")]
pub fn run_sync_modeled<T: Task>(
    task: &T,
    batch: &Batch<'_>,
    mc: &CpuModelConfig,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    sync_modeled_observed(task, batch, mc, alpha, opts, &mut NullObserver)
}

pub(crate) fn sync_modeled_observed<T: Task>(
    task: &T,
    batch: &Batch<'_>,
    mc: &CpuModelConfig,
    alpha: f64,
    opts: &RunOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    let mut e = mc.exec();
    let mut eval = CpuExec::seq();
    let mut w = task.init_model();
    let mut g = vec![0.0; task.dim()];
    // Last applied gradient, kept for stale-gradient-replay faults.
    let mut prev_g = vec![0.0; task.dim()];
    let mut trace = LossTrace::new();
    let initial_loss = task.loss(&mut eval, batch, &w);
    trace.push(0.0, initial_loss);
    let mut rec = Recorder::new(obs);
    let mut sup = Supervisor::new(opts, initial_loss);
    let faults = opts.faults.active();
    let workers = mc.threads.max(1);
    // Straggler stalls charged on top of the cost model's own clock.
    let mut extra = 0.0;
    let mut model_secs_at_epoch_start = 0.0;
    for epoch in 0..opts.max_epochs {
        if let Some(plan) = faults {
            if plan.barrier_stalled(workers, epoch) {
                sup.abort(epoch + 1);
                break;
            }
        }
        let mut fc = FaultCounters::default();
        task.gradient(&mut e, batch, &w, &mut g);
        let d = match faults {
            Some(plan) => sync_epoch_faults(plan, epoch, &mut fc),
            None => SyncFaultDecision::none(),
        };
        if !d.dropped {
            let step = if d.stale { &prev_g } else { &g };
            e.axpy(-alpha * d.alpha_factor, step, &mut w);
        }
        if !d.stale {
            std::mem::swap(&mut g, &mut prev_g);
        }
        if let Some(plan) = faults {
            // The modeled barrier waits for the slowest straggler.
            let dil = plan.sync_dilation(workers);
            fc.straggler_delay_secs = (e.elapsed_secs() - model_secs_at_epoch_start) * (dil - 1.0);
            extra += fc.straggler_delay_secs;
        }
        model_secs_at_epoch_start = e.elapsed_secs();
        let elapsed = e.elapsed_secs() + extra;
        let loss = task.loss(&mut eval, batch, &w); // untimed
        trace.push(elapsed, loss);
        rec.record(EpochMetrics { faults: fc, ..EpochMetrics::new(epoch + 1, elapsed, loss) });
        if sup.observe(epoch + 1, elapsed, loss, &w, &trace, &mut rec) {
            break;
        }
    }
    let verdict = sup.finish();
    RunReport {
        label: format!("{} sync {} (modeled)", task.name(), mc.device().label()),
        device: mc.device(),
        step_size: alpha,
        trace,
        opt_seconds: e.elapsed_secs() + extra,
        timed_out: verdict.timed_out,
        metrics: rec.finish(),
        outcome: verdict.outcome,
        best_model: verdict.best_model,
    }
}

/// One bounded-staleness epoch for a linear task: rounds of `round`
/// examples read the pre-round model, updates apply additively at round
/// end. `round == 1` is exactly sequential incremental SGD.
pub(crate) fn staleness_epoch<L: PointwiseLoss + ?Sized>(
    loss: &L,
    batch: &Batch<'_>,
    w: &mut [Scalar],
    alpha: f64,
    order: &[u32],
    round: usize,
) {
    let round = round.max(1);
    let mut pending: Vec<(u32, Scalar)> = Vec::with_capacity(round * 8);
    for chunk in order.chunks(round) {
        pending.clear();
        for &i in chunk {
            let i = i as usize;
            match batch.x {
                Examples::Sparse(m) => {
                    let row = m.row(i);
                    let margin: Scalar =
                        row.cols.iter().zip(row.vals).map(|(&c, &v)| v * w[c as usize]).sum();
                    let s = loss.dloss_at(margin, batch.y[i]);
                    if s != 0.0 {
                        let step = -alpha * s;
                        if round == 1 {
                            for (&c, &v) in row.cols.iter().zip(row.vals) {
                                w[c as usize] += step * v;
                            }
                        } else {
                            pending.extend(
                                row.cols.iter().zip(row.vals).map(|(&c, &v)| (c, step * v)),
                            );
                        }
                    }
                }
                Examples::Dense(m) => {
                    let row = m.row(i);
                    let margin: Scalar = row.iter().zip(w.iter()).map(|(&v, &wj)| v * wj).sum();
                    let s = loss.dloss_at(margin, batch.y[i]);
                    if s != 0.0 {
                        let step = -alpha * s;
                        if round == 1 {
                            for (j, &v) in row.iter().enumerate() {
                                w[j] += step * v;
                            }
                        } else {
                            pending
                                .extend(row.iter().enumerate().map(|(j, &v)| (j as u32, step * v)));
                        }
                    }
                }
            }
        }
        for &(c, d) in &pending {
            w[c as usize] += d;
        }
    }
}

/// [`staleness_epoch`] with per-example fault injection. Each lane of a
/// round is one modeled worker: a dead lane's examples are skipped, stale
/// reads come from the epoch-start model, corrupted steps are scaled, and
/// dropped updates never land. Decisions hash on the example index, so the
/// schedule is independent of the round size.
#[allow(clippy::too_many_arguments)]
pub(crate) fn staleness_epoch_faulty<L: PointwiseLoss + ?Sized>(
    loss: &L,
    batch: &Batch<'_>,
    w: &mut [Scalar],
    alpha: f64,
    order: &[u32],
    round: usize,
    plan: &FaultPlan,
    epoch: usize,
    epoch_start: &[Scalar],
    fc: &mut FaultCounters,
) {
    let round = round.max(1);
    let mut pending: Vec<(u32, Scalar)> = Vec::with_capacity(round * 8);
    for chunk in order.chunks(round) {
        pending.clear();
        for (lane, &i) in chunk.iter().enumerate() {
            if plan.worker_dead(lane, epoch) {
                continue;
            }
            let i = i as usize;
            let stale = plan.stale_read(epoch, i);
            if stale {
                fc.stale_reads += 1;
            }
            let s = match batch.x {
                Examples::Sparse(m) => {
                    let row = m.row(i);
                    let read = if stale { epoch_start } else { &*w };
                    let margin: Scalar =
                        row.cols.iter().zip(row.vals).map(|(&c, &v)| v * read[c as usize]).sum();
                    loss.dloss_at(margin, batch.y[i])
                }
                Examples::Dense(m) => {
                    let row = m.row(i);
                    let read = if stale { epoch_start } else { &*w };
                    let margin: Scalar = row.iter().zip(read.iter()).map(|(&v, &wj)| v * wj).sum();
                    loss.dloss_at(margin, batch.y[i])
                }
            };
            if s == 0.0 {
                continue;
            }
            let mut step = -alpha * s;
            if let Some(f) = plan.corrupt_factor(epoch, i) {
                step *= f;
                fc.corrupted_updates += 1;
            }
            if plan.drops_update(epoch, i) {
                fc.dropped_updates += 1;
                continue;
            }
            match batch.x {
                Examples::Sparse(m) => {
                    let row = m.row(i);
                    if round == 1 {
                        for (&c, &v) in row.cols.iter().zip(row.vals) {
                            w[c as usize] += step * v;
                        }
                    } else {
                        pending.extend(row.cols.iter().zip(row.vals).map(|(&c, &v)| (c, step * v)));
                    }
                }
                Examples::Dense(m) => {
                    let row = m.row(i);
                    if round == 1 {
                        for (j, &v) in row.iter().enumerate() {
                            w[j] += step * v;
                        }
                    } else {
                        pending.extend(row.iter().enumerate().map(|(j, &v)| (j as u32, step * v)));
                    }
                }
            }
        }
        for &(c, d) in &pending {
            w[c as usize] += d;
        }
    }
}

/// Batch shape statistics the Hogwild cost model needs.
pub(crate) fn batch_stats(batch: &Batch<'_>) -> (usize, f64, usize, usize) {
    match batch.x {
        Examples::Sparse(m) => {
            let (_, avg, _) = m.nnz_per_row_stats();
            (m.rows(), avg, m.cols(), m.sparse_size_bytes())
        }
        Examples::Dense(m) => (m.rows(), m.cols() as f64, m.cols(), 8 * m.len()),
    }
}

/// Hogwild for a linear task with modeled time and bounded-staleness
/// statistics.
#[deprecated(
    note = "dispatch through `Engine::run` with `Strategy::Hogwild` and `Timing::Modeled`"
)]
pub fn run_hogwild_modeled<L: LinearLoss>(
    task: &LinearTask<L>,
    batch: &Batch<'_>,
    mc: &CpuModelConfig,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    hogwild_modeled_observed(task, task.pointwise(), batch, mc, alpha, opts, &mut NullObserver)
}

pub(crate) fn hogwild_modeled_observed<T: Task>(
    task: &T,
    loss_fn: &dyn PointwiseLoss,
    batch: &Batch<'_>,
    mc: &CpuModelConfig,
    alpha: f64,
    opts: &RunOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    let (n, avg_nnz, dim, data_bytes) = batch_stats(batch);
    let cost = HogwildCost { spec: mc.spec.clone(), threads: mc.threads };
    let epoch_secs = cost.epoch_secs(n, avg_nnz, dim, data_bytes);
    // Expected cross-core invalidations per epoch under the cost model —
    // the same quantity its coherency time term charges for.
    let coherency_per_epoch = n as f64 * avg_nnz * cost.conflict_rate(avg_nnz, dim);
    let staleness_rounds = if mc.threads > 1 { n.div_ceil(mc.threads) as u64 } else { 0 };

    let order = shuffled_order(n, opts.seed);
    let mut w = task.init_model();
    let mut eval = CpuExec::seq();
    let mut trace = LossTrace::new();
    let initial_loss = task.loss(&mut eval, batch, &w);
    trace.push(0.0, initial_loss);
    let mut rec = Recorder::new(obs);
    let mut sup = Supervisor::new(opts, initial_loss);
    let faults = opts.faults.active();
    let mut epoch_start: Vec<Scalar> = Vec::new();
    let mut elapsed = 0.0;
    for epoch in 0..opts.max_epochs {
        let mut fc = FaultCounters::default();
        let mut secs = epoch_secs;
        match faults {
            None => staleness_epoch(loss_fn, batch, &mut w, alpha, &order, mc.threads),
            Some(plan) => {
                if epoch_start.len() == w.len() {
                    epoch_start.copy_from_slice(&w);
                } else {
                    epoch_start = w.clone();
                }
                if plan.has_dead_worker(mc.threads, epoch) {
                    fc.dead_workers = 1;
                }
                staleness_epoch_faulty(
                    loss_fn,
                    batch,
                    &mut w,
                    alpha,
                    &order,
                    mc.threads,
                    plan,
                    epoch,
                    &epoch_start,
                    &mut fc,
                );
                // Independent modeled workers absorb the straggler.
                let dil = plan.async_dilation(mc.threads);
                fc.straggler_delay_secs = epoch_secs * (dil - 1.0);
                secs = epoch_secs * dil;
            }
        }
        elapsed += secs;
        let loss = task.loss(&mut eval, batch, &w);
        trace.push(elapsed, loss);
        rec.record(EpochMetrics {
            staleness_rounds,
            coherency_conflicts: coherency_per_epoch,
            faults: fc,
            ..EpochMetrics::new(epoch + 1, elapsed, loss)
        });
        if sup.observe(epoch + 1, elapsed, loss, &w, &trace, &mut rec) {
            break;
        }
    }
    let verdict = sup.finish();
    RunReport {
        label: format!("{} async {} (modeled)", task.name(), mc.device().label()),
        device: mc.device(),
        step_size: alpha,
        trace,
        opt_seconds: elapsed,
        timed_out: verdict.timed_out,
        metrics: rec.finish(),
        outcome: verdict.outcome,
        best_model: verdict.best_model,
    }
}

/// Hogbatch with modeled time: workers compute mini-batch gradients
/// against round-stale snapshots; timing is one batch's modeled
/// single-thread cost scaled by the batch count over the effective cores,
/// plus the coherency cost of the concurrent dense model updates.
#[deprecated(
    note = "dispatch through `Engine::run` with `Strategy::Hogbatch` and `Timing::Modeled`"
)]
pub fn run_hogbatch_modeled<T: Task>(
    task: &T,
    full: &Batch<'_>,
    batches: &[Batch<'_>],
    mc: &CpuModelConfig,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    hogbatch_modeled_observed(task, full, batches, mc, alpha, opts, &mut NullObserver)
}

pub(crate) fn hogbatch_modeled_observed<T: Task>(
    task: &T,
    full: &Batch<'_>,
    batches: &[Batch<'_>],
    mc: &CpuModelConfig,
    alpha: f64,
    opts: &RunOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    assert!(!batches.is_empty(), "at least one mini-batch required");
    let dim = task.dim();
    let mut w = task.init_model();
    let mut eval = CpuExec::seq();

    // Modeled cost of one epoch: per-batch gradient on one core, batches
    // spread over the machine, coherency from the dense updates.
    let mut probe = CpuModelExec::new(mc.spec.clone(), 1);
    let mut g = vec![0.0; dim];
    task.gradient(&mut probe, &batches[0], &w, &mut g);
    probe.axpy(-alpha, &g, &mut w);
    let batch_cost = probe.elapsed_secs();
    // Re-initialize: the probe step above must not perturb the trajectory.
    w = task.init_model();
    let (coherency, coherency_per_epoch) = if mc.threads > 1 {
        // Each batch update writes the whole (dense) model once, but the
        // write phase is only a small fraction of a batch's duration, so
        // the probability that another worker writes concurrently is the
        // write duty cycle times the number of other workers.
        let write_secs = dim as f64 * 1e-9;
        let duty = (write_secs / batch_cost.max(1e-12)).min(1.0);
        let rate = ((mc.threads - 1) as f64 * duty).min(1.0);
        let pipelines = (dim as f64 * 8.0 / mc.spec.cacheline as f64).sqrt().max(1.0);
        // Expected conflicting model-cacheline writes per epoch, and the
        // time they cost once invalidation latency is spread over the
        // memory pipelines.
        let conflicts = batches.len() as f64 * dim as f64 * rate;
        (conflicts * mc.spec.coherency_inval_ns * 1e-9 / pipelines, conflicts)
    } else {
        (0.0, 0.0)
    };
    let staleness_rounds =
        if mc.threads > 1 { batches.len().div_ceil(mc.threads) as u64 } else { 0 };
    // Scale by total rows rather than batch count so a smaller trailing
    // batch is not charged as a full one.
    let total_rows: usize = batches.iter().map(|b| b.n()).sum();
    let equivalent_batches = total_rows as f64 / batches[0].n().max(1) as f64;
    let epoch_secs = (batch_cost * equivalent_batches / mc.spec.effective_cores(mc.threads))
        .max(coherency)
        + if mc.threads > 1 { mc.spec.fork_join_secs } else { 0.0 };

    let mut trace = LossTrace::new();
    let initial_loss = task.loss(&mut eval, full, &w);
    trace.push(0.0, initial_loss);
    let mut rec = Recorder::new(obs);
    let mut sup = Supervisor::new(opts, initial_loss);
    let faults = opts.faults.active();
    let workers = mc.threads.max(1);
    let mut epoch_start: Vec<Scalar> = Vec::new();
    let mut elapsed = 0.0;
    let mut cpu = CpuExec::seq();
    let mut snapshot = vec![0.0; dim];
    for epoch in 0..opts.max_epochs {
        let mut fc = FaultCounters::default();
        let mut secs = epoch_secs;
        match faults {
            None => {
                // Rounds of `threads` batches share a stale snapshot.
                for group in batches.chunks(workers) {
                    snapshot.copy_from_slice(&w);
                    for b in group {
                        task.gradient(&mut cpu, b, &snapshot, &mut g);
                        for (wj, &gj) in w.iter_mut().zip(&g) {
                            *wj -= alpha * gj;
                        }
                    }
                }
            }
            Some(plan) => {
                if epoch_start.len() == w.len() {
                    epoch_start.copy_from_slice(&w);
                } else {
                    epoch_start = w.clone();
                }
                if plan.has_dead_worker(workers, epoch) {
                    fc.dead_workers = 1;
                }
                // Lane index within a round = modeled worker id; fault
                // decisions hash on the global batch index.
                let mut idx = 0usize;
                for group in batches.chunks(workers) {
                    snapshot.copy_from_slice(&w);
                    for (lane, b) in group.iter().enumerate() {
                        let bi = idx;
                        idx += 1;
                        if plan.worker_dead(lane, epoch) {
                            continue;
                        }
                        let stale = plan.stale_read(epoch, bi);
                        if stale {
                            fc.stale_reads += 1;
                        }
                        let read: &[Scalar] = if stale { &epoch_start } else { &snapshot };
                        task.gradient(&mut cpu, b, read, &mut g);
                        let mut a = alpha;
                        if let Some(f) = plan.corrupt_factor(epoch, bi) {
                            a *= f;
                            fc.corrupted_updates += 1;
                        }
                        if plan.drops_update(epoch, bi) {
                            fc.dropped_updates += 1;
                            continue;
                        }
                        for (wj, &gj) in w.iter_mut().zip(&g) {
                            *wj -= a * gj;
                        }
                    }
                }
                let dil = plan.async_dilation(workers);
                fc.straggler_delay_secs = epoch_secs * (dil - 1.0);
                secs = epoch_secs * dil;
            }
        }
        elapsed += secs;
        let loss = task.loss(&mut eval, full, &w);
        trace.push(elapsed, loss);
        rec.record(EpochMetrics {
            staleness_rounds,
            coherency_conflicts: coherency_per_epoch,
            faults: fc,
            ..EpochMetrics::new(epoch + 1, elapsed, loss)
        });
        if sup.observe(epoch + 1, elapsed, loss, &w, &trace, &mut rec) {
            break;
        }
    }
    let verdict = sup.finish();
    RunReport {
        label: format!("{} async {} (hogbatch, modeled)", task.name(), mc.device().label()),
        device: mc.device(),
        step_size: alpha,
        trace,
        opt_seconds: elapsed,
        timed_out: verdict.timed_out,
        metrics: rec.finish(),
        outcome: verdict.outcome,
        best_model: verdict.best_model,
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // exercises the legacy shim entry points

    use super::*;
    use crate::hogwild::run_hogwild;
    use crate::sync::run_sync;
    use sgd_linalg::{CsrMatrix, Matrix};
    use sgd_models::{lr, MlpTask};

    fn sparse_data(n: usize, d: usize) -> (CsrMatrix, Vec<Scalar>) {
        let entries: Vec<Vec<(u32, Scalar)>> = (0..n)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                let mut v = vec![((i % d) as u32, sign), (((i * 5 + 1) % d) as u32, sign * 0.5)];
                v.sort_by_key(|e| e.0);
                v.dedup_by_key(|e| e.0);
                v
            })
            .collect();
        let y = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        (CsrMatrix::from_row_entries(n, d, &entries), y)
    }

    #[test]
    fn modeled_sync_statistics_match_wall_sync() {
        let (x, y) = sparse_data(128, 16);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(16);
        let opts = RunOptions { max_epochs: 8, ..Default::default() };
        let wall = run_sync(&task, &b, DeviceKind::CpuSeq, 0.5, &opts);
        let modeled = run_sync_modeled(&task, &b, &CpuModelConfig::paper_machine(56), 0.5, &opts);
        for (p, q) in wall.trace.points().iter().zip(modeled.trace.points()) {
            assert!((p.1 - q.1).abs() < 1e-12, "{} vs {}", p.1, q.1);
        }
        assert!(modeled.opt_seconds > 0.0);
    }

    #[test]
    fn modeled_single_thread_hogwild_matches_wall_hogwild() {
        let (x, y) = sparse_data(200, 16);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(16);
        let opts = RunOptions { max_epochs: 6, ..Default::default() };
        let wall = run_hogwild(&task, &b, 1, 0.5, &opts);
        let modeled = run_hogwild_modeled(&task, &b, &CpuModelConfig::paper_machine(1), 0.5, &opts);
        for (p, q) in wall.trace.points().iter().zip(modeled.trace.points()) {
            assert!((p.1 - q.1).abs() < 1e-12, "{} vs {}", p.1, q.1);
        }
    }

    #[test]
    fn staleness_changes_trajectory_but_still_converges() {
        let (x, y) = sparse_data(256, 8); // low-dimensional: much contention
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(8);
        let opts = RunOptions { max_epochs: 3, ..Default::default() };
        let fresh = run_hogwild_modeled(&task, &b, &CpuModelConfig::paper_machine(1), 0.2, &opts);
        let stale = run_hogwild_modeled(&task, &b, &CpuModelConfig::paper_machine(56), 0.2, &opts);
        // The delayed reads produce a measurably different trajectory...
        let diff: f64 = fresh
            .trace
            .points()
            .iter()
            .zip(stale.trace.points())
            .map(|(p, q)| (p.1 - q.1).abs())
            .sum();
        assert!(diff > 1e-9, "staleness must alter the trajectory");
        // ...while both still optimize.
        let l0 = fresh.trace.points()[0].1;
        assert!(fresh.best_loss() < 0.5 * l0);
        assert!(stale.best_loss() < 0.5 * l0);
    }

    #[test]
    fn staleness_round_one_is_exactly_incremental() {
        let (x, y) = sparse_data(128, 16);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(16);
        let order = crate::hogwild::shuffled_order(128, 1);
        let mut w1 = task.init_model();
        staleness_epoch(task.pointwise(), &b, &mut w1, 0.3, &order, 1);
        // Reference: plain incremental updates in the same order.
        let mut w2 = task.init_model();
        for &i in &order {
            let i = i as usize;
            let row = x.row(i);
            let margin: Scalar =
                row.cols.iter().zip(row.vals).map(|(&c, &v)| v * w2[c as usize]).sum();
            let s = task.pointwise().dloss(margin, y[i]);
            for (&c, &v) in row.cols.iter().zip(row.vals) {
                w2[c as usize] += -0.3 * s * v;
            }
        }
        assert!(sgd_linalg::approx_eq_slice(&w1, &w2, 1e-12));
    }

    #[test]
    fn modeled_dense_hogwild_par_slower_per_epoch() {
        // covtype-like: dense, low-dimensional => parallel is slower.
        let x = Matrix::from_fn(512, 54, |i, j| (((i + j) % 5) as Scalar - 2.0) / 2.0);
        let y: Vec<Scalar> = (0..512).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(54);
        let opts = RunOptions { max_epochs: 2, ..Default::default() };
        let seq = run_hogwild_modeled(&task, &b, &CpuModelConfig::paper_machine(1), 0.1, &opts);
        let par = run_hogwild_modeled(&task, &b, &CpuModelConfig::paper_machine(56), 0.1, &opts);
        assert!(par.time_per_epoch() > seq.time_per_epoch());
    }

    #[test]
    fn modeled_sparse_hogwild_par_faster_per_epoch() {
        let (x, y) = sparse_data(4096, 100_000);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(100_000);
        let opts = RunOptions { max_epochs: 2, ..Default::default() };
        let seq = run_hogwild_modeled(&task, &b, &CpuModelConfig::paper_machine(1), 0.1, &opts);
        let par = run_hogwild_modeled(&task, &b, &CpuModelConfig::paper_machine(56), 0.1, &opts);
        assert!(par.time_per_epoch() < seq.time_per_epoch());
    }

    #[test]
    fn modeled_hogbatch_runs_and_speeds_up() {
        // w8a-like sizes: large enough that a batch's compute dominates
        // its model-update write phase (as at the paper's scale).
        let x = Matrix::from_fn(1024, 300, |i, j| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            s * (((i * 3 + j) % 4) as Scalar + 1.0) / 4.0
        });
        let y: Vec<Scalar> = (0..1024).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let task = MlpTask::new(vec![300, 10, 5, 2], 1);
        let owned = crate::hogbatch::make_batches(&x, &y, 512);
        let batches: Vec<Batch<'_>> =
            owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
        let full = Batch::new(Examples::Dense(&x), &y);
        let opts = RunOptions { max_epochs: 3, ..Default::default() };
        // Zero fork/join isolates the scaling law from the (realistic)
        // per-region overhead, which dominates at this toy scale.
        let mut mc1 = CpuModelConfig::paper_machine(1);
        mc1.spec.fork_join_secs = 0.0;
        let mut mc56 = CpuModelConfig::paper_machine(56);
        mc56.spec.fork_join_secs = 0.0;
        let seq = run_hogbatch_modeled(&task, &full, &batches, &mc1, 0.5, &opts);
        let par = run_hogbatch_modeled(&task, &full, &batches, &mc56, 0.5, &opts);
        assert!(par.time_per_epoch() < seq.time_per_epoch());
        // Both make progress on the loss.
        assert!(seq.best_loss() < seq.trace.points()[0].1);
        assert!(par.best_loss() < par.trace.points()[0].1);
    }

    #[test]
    fn modeled_straggler_hits_sync_harder_than_hogwild() {
        // The paper-level claim the faults bench quantifies: a 4x straggler
        // stalls the synchronous barrier by the full 4x, while 8
        // independent Hogwild workers only lose its throughput share.
        let (x, y) = sparse_data(128, 16);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(16);
        let mc = CpuModelConfig::paper_machine(8);
        let clean = RunOptions { max_epochs: 4, plateau: None, ..Default::default() };
        let faulty = RunOptions {
            faults: crate::FaultPlan::default().with_straggler(0, 4.0),
            ..clean.clone()
        };
        let sc = run_sync_modeled(&task, &b, &mc, 0.5, &clean);
        let sf = run_sync_modeled(&task, &b, &mc, 0.5, &faulty);
        let hc = run_hogwild_modeled(&task, &b, &mc, 0.2, &clean);
        let hf = run_hogwild_modeled(&task, &b, &mc, 0.2, &faulty);
        assert_eq!(sc.trace.epochs(), sf.trace.epochs(), "straggler leaves statistics alone");
        assert_eq!(hc.trace.epochs(), hf.trace.epochs());
        let sync_ratio = sf.opt_seconds / sc.opt_seconds;
        let async_ratio = hf.opt_seconds / hc.opt_seconds;
        assert!((sync_ratio - 4.0).abs() < 1e-9, "sync dilation {sync_ratio}");
        let expected = 8.0 / (7.0 + 0.25);
        assert!((async_ratio - expected).abs() < 1e-9, "async dilation {async_ratio}");
        assert!(async_ratio < sync_ratio, "async absorbs the straggler");
    }

    #[test]
    fn gemm_threshold_ablation_changes_modeled_time() {
        // Large enough that the input-layer products dominate and benefit
        // from parallelism once the ViennaCL threshold is lifted.
        let x = Matrix::from_fn(20_000, 50, |i, j| (((i + j) % 7) as Scalar - 3.0) / 3.0);
        let y: Vec<Scalar> = (0..20_000).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = MlpTask::new(vec![50, 10, 5, 2], 1);
        let opts = RunOptions { max_epochs: 2, ..Default::default() };
        // The weight-gradient products (50x10, 10x5, 5x2 results) stay
        // below the threshold; with it lifted they parallelize too.
        let mut with = CpuModelConfig::paper_machine(56);
        with.spec.fork_join_secs = 0.0;
        let mut without = with.clone();
        without.gemm_parallel_threshold = 0;
        let rep_with = run_sync_modeled(&task, &b, &with, 0.5, &opts);
        let rep_without = run_sync_modeled(&task, &b, &without, 0.5, &opts);
        assert!(
            rep_without.time_per_epoch() < rep_with.time_per_epoch(),
            "lifting the ViennaCL threshold must speed the modeled epoch up: {} vs {}",
            rep_without.time_per_epoch(),
            rep_with.time_per_epoch()
        );
    }
}
