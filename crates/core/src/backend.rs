//! The unified compute-backend layer: one execution axis for training
//! *and* serving (see DESIGN.md, "Backend layer").
//!
//! The paper's thesis is that hardware choice (multi-core CPU vs GPU)
//! is a swappable axis. This module makes it one value — a
//! [`ComputeBackend`] — with one dispatch implementation shared by the
//! training runners and the serving batcher:
//!
//! * [`ComputeBackend::dispatch`] runs an [`ExecTask`] on the chosen
//!   executor (sequential CPU, persistent-pool parallel CPU, or the
//!   simulated GPU) and returns the result plus what the dispatch cost
//!   under each clock (wall seconds always; simulated seconds and cache
//!   counters when the GPU ran).
//! * [`BackendSession`] owns the state a backend keeps *between*
//!   dispatches — today, the persistent simulated [`GpuDevice`], so
//!   consecutive dispatches see a warm L2 instead of a cold device per
//!   call.
//! * [`CostModel`] is the one home of the modeled dispatch-overhead /
//!   flops-rate / parallel-efficiency constants (previously duplicated
//!   in the serving batcher) plus the gpusim roofline; its
//!   [`CostModel::estimate_secs`] answers "how long would this
//!   [`Workload`] take on that backend" — the question the batch router
//!   asks per batch.

use std::time::Instant;

use sgd_gpusim::kernels::GpuExec;
use sgd_gpusim::{DeviceSpec, GpuDevice};
use sgd_linalg::{CpuExec, Exec};

use crate::config::DeviceKind;
use crate::faults::FaultPlan;
use crate::pool::with_threads;

/// Per-batch dispatch overhead charged by the modeled clock on the
/// sequential CPU backend (queue pop + call, seconds).
pub const CPU_SEQ_DISPATCH_SECS: f64 = 2.0e-6;

/// Per-batch dispatch overhead on the parallel CPU backend (persistent
/// pool hand-off + wake, seconds; the pool bench measures this order).
pub const CPU_PAR_DISPATCH_SECS: f64 = 8.0e-6;

/// Modeled per-core floating-point rate of the CPU backends, flops/s.
pub const CPU_FLOPS_PER_CORE: f64 = 4.0e9;

/// Parallel efficiency of the pooled CPU backend's extra cores.
pub const CPU_PAR_EFFICIENCY: f64 = 0.85;

/// One executable backend — the hardware axis of the paper's cube as a
/// runtime value, shared by training and serving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComputeBackend {
    /// Sequential CPU kernels.
    CpuSeq,
    /// Parallel CPU kernels on the persistent worker pool.
    CpuPar {
        /// Kernel width (worker threads).
        threads: usize,
    },
    /// The simulated GPU.
    GpuSim,
}

impl ComputeBackend {
    /// Stable label for reports and JSON.
    pub fn label(&self) -> String {
        match self {
            ComputeBackend::CpuSeq => "cpu-seq".to_string(),
            ComputeBackend::CpuPar { threads } => format!("cpu-par{threads}"),
            ComputeBackend::GpuSim => "gpu-sim".to_string(),
        }
    }

    /// The backend a training device maps to (`threads` is only read for
    /// the parallel CPU).
    pub fn from_device(device: DeviceKind, threads: usize) -> Self {
        match device {
            DeviceKind::CpuSeq => ComputeBackend::CpuSeq,
            DeviceKind::CpuPar => ComputeBackend::CpuPar { threads: threads.max(1) },
            DeviceKind::Gpu => ComputeBackend::GpuSim,
        }
    }

    /// The training device this backend corresponds to.
    pub fn device_kind(&self) -> DeviceKind {
        match self {
            ComputeBackend::CpuSeq => DeviceKind::CpuSeq,
            ComputeBackend::CpuPar { .. } => DeviceKind::CpuPar,
            ComputeBackend::GpuSim => DeviceKind::Gpu,
        }
    }

    /// Kernel width this backend executes with.
    pub fn threads(&self) -> usize {
        match self {
            ComputeBackend::CpuPar { threads } => (*threads).max(1),
            _ => 1,
        }
    }

    /// The standard fixed-backend sweep (seq, pooled `threads`-wide par,
    /// simulated GPU) — the candidate set benches and the router default
    /// to.
    pub fn fixed_set(threads: usize) -> [ComputeBackend; 3] {
        [
            ComputeBackend::CpuSeq,
            ComputeBackend::CpuPar { threads: threads.max(1) },
            ComputeBackend::GpuSim,
        ]
    }

    /// The fault-plan worker slot this backend occupies (see
    /// [`DispatchFaults`]): `cpu-seq` = 0, `cpu-par` = 1, `gpu-sim` = 2.
    pub fn fault_worker(&self) -> usize {
        match self {
            ComputeBackend::CpuSeq => 0,
            ComputeBackend::CpuPar { .. } => 1,
            ComputeBackend::GpuSim => 2,
        }
    }

    /// Runs `job` on this backend.
    ///
    /// The same kernel stream backs every backend: `CpuSeq` runs it
    /// sequentially, `CpuPar` installs its width on the persistent pool
    /// for the duration of the job (so every kernel inside — on the
    /// caller or on pool workers — chunks identically for a given
    /// width), and `GpuSim` traces it on the session's persistent device
    /// inside a fresh transient buffer scope, so per-dispatch scratch
    /// traces deterministic virtual addresses.
    ///
    /// This entry point ignores any installed fault gate (it is the
    /// training engine's unconditional path); serving front-ends that
    /// must surface injected faults as typed errors go through
    /// [`ComputeBackend::try_dispatch`].
    pub fn dispatch<J: ExecTask>(
        &self,
        session: &mut BackendSession,
        job: &mut J,
    ) -> Dispatch<J::Out> {
        match *self {
            ComputeBackend::CpuSeq => {
                let t0 = Instant::now();
                let out = job.run(&mut CpuExec::seq());
                Dispatch {
                    out,
                    wall_secs: t0.elapsed().as_secs_f64(),
                    gpu: None,
                    fault_dilation: 1.0,
                }
            }
            ComputeBackend::CpuPar { threads } => {
                let t0 = Instant::now();
                let out = with_threads(threads, || job.run(&mut CpuExec::par()));
                Dispatch {
                    out,
                    wall_secs: t0.elapsed().as_secs_f64(),
                    gpu: None,
                    fault_dilation: 1.0,
                }
            }
            ComputeBackend::GpuSim => {
                let dev = session.gpu_device();
                dev.begin_transient_scope();
                let cycles0 = dev.elapsed_cycles();
                let before = dev.stats().clone();
                let t0 = Instant::now();
                let out = job.run(&mut GpuExec::new(dev));
                let wall_secs = t0.elapsed().as_secs_f64();
                let cycles = dev.elapsed_cycles() - cycles0;
                let after = dev.stats();
                let gpu = GpuDispatch {
                    sim_secs: dev.spec().cycles_to_secs(cycles),
                    cycles,
                    kernels: after.kernels_launched - before.kernels_launched,
                    l2_hits: after.l2_hits - before.l2_hits,
                    l2_misses: after.l2_misses - before.l2_misses,
                };
                Dispatch { out, wall_secs, gpu: Some(gpu), fault_dilation: 1.0 }
            }
        }
    }

    /// Runs `job` on this backend through the session's fault gate.
    ///
    /// With no gate installed this is exactly [`ComputeBackend::dispatch`]
    /// and never fails. With a [`DispatchFaults`] gate, each call draws
    /// one decision from the deterministic [`FaultPlan`] stream keyed on
    /// the session-wide dispatch sequence number: a dead backend returns
    /// a typed [`BackendFault`] *without running the job* (the serving
    /// front-end's `ERR` path), and a straggling backend runs the job but
    /// reports its cost dilated by the straggler factor (on the wall
    /// clock, the simulated GPU clock, and [`Dispatch::fault_dilation`]
    /// for modeled-clock callers). Same seed, same dispatch order ⇒
    /// bit-identical fault decisions.
    pub fn try_dispatch<J: ExecTask>(
        &self,
        session: &mut BackendSession,
        job: &mut J,
    ) -> Result<Dispatch<J::Out>, BackendFault> {
        let dilation = session.draw_fault(self)?;
        let mut d = self.dispatch(session, job);
        apply_dilation(&mut d, dilation);
        Ok(d)
    }
}

/// Typed failure of a fault-gated backend dispatch — the serving
/// analog of training's `RunOutcome::FaultAborted`: the request fails
/// with a typed error instead of hanging on hardware that is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendFault {
    /// The backend's fault-plan worker is dead at this point in the
    /// dispatch sequence; the job was not run.
    BackendDown {
        /// Session-wide dispatch sequence number the death surfaced at.
        dispatch: u64,
    },
}

impl std::fmt::Display for BackendFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendFault::BackendDown { dispatch } => {
                write!(f, "backend down (dispatch {dispatch})")
            }
        }
    }
}

impl std::error::Error for BackendFault {}

/// Deterministic per-dispatch fault gate built from the training
/// layer's [`FaultPlan`], reusing its worker vocabulary: each backend
/// occupies one worker slot ([`ComputeBackend::fault_worker`]), the
/// session-wide dispatch sequence number plays the role of the epoch,
/// so `FaultPlan::with_worker_death(2, 100)` kills the simulated GPU
/// from the 100th gated dispatch onward and
/// `FaultPlan::with_straggler(0, 4.0)` makes every sequential-CPU
/// dispatch report 4× its healthy cost.
#[derive(Clone, Debug)]
pub struct DispatchFaults {
    plan: FaultPlan,
    dispatches: u64,
}

impl DispatchFaults {
    /// A gate drawing decisions from `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        DispatchFaults { plan, dispatches: 0 }
    }

    /// The plan the gate draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Dispatches gated so far (dead ones included — a rejected dispatch
    /// still consumes a sequence number, keeping replay deterministic).
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Draws the decision for the next dispatch on `backend`: `Err` when
    /// the backend is dead, otherwise the straggler dilation (`1.0` =
    /// healthy).
    fn next(&mut self, backend: &ComputeBackend) -> Result<f64, BackendFault> {
        let seq = self.dispatches;
        self.dispatches += 1;
        let worker = backend.fault_worker();
        if self.plan.worker_dead(worker, usize::try_from(seq).unwrap_or(usize::MAX)) {
            return Err(BackendFault::BackendDown { dispatch: seq });
        }
        Ok(self.plan.slowdown_of(worker))
    }
}

/// A unit of work expressed over the [`Exec`] kernel vocabulary, so one
/// definition runs on every backend. (The trait is needed because
/// [`Exec`] itself is not object-safe: its `map`/`zip` combinators are
/// generic.)
pub trait ExecTask {
    /// What the job returns.
    type Out;
    /// Runs the job's kernel stream on `e`.
    fn run<E: Exec>(&mut self, e: &mut E) -> Self::Out;
}

/// What one [`ComputeBackend::dispatch`] produced and cost.
#[derive(Clone, Debug)]
pub struct Dispatch<T> {
    /// The job's result.
    pub out: T,
    /// Real elapsed seconds around the computation (already dilated by
    /// any straggler fault).
    pub wall_secs: f64,
    /// Simulated-device accounting; `None` on the CPU backends.
    pub gpu: Option<GpuDispatch>,
    /// Straggler dilation an installed fault gate charged this dispatch
    /// (`1.0` = healthy or no gate). Callers on a *modeled* clock must
    /// multiply their own estimate by this — the wall and simulated
    /// clocks above are already dilated.
    pub fault_dilation: f64,
}

/// Applies a straggler dilation drawn by [`BackendSession::draw_fault`]
/// to a finished dispatch: the wall clock, the simulated GPU clock, and
/// [`Dispatch::fault_dilation`] all pick up the factor. No-op for a
/// healthy draw (`1.0`).
pub fn apply_dilation<T>(d: &mut Dispatch<T>, dilation: f64) {
    if dilation > 1.0 {
        d.wall_secs *= dilation;
        d.fault_dilation = dilation;
        if let Some(g) = d.gpu.as_mut() {
            g.sim_secs *= dilation;
        }
    }
}

/// Simulated-clock deltas of one GPU dispatch.
#[derive(Clone, Copy, Debug)]
pub struct GpuDispatch {
    /// Simulated seconds the dispatch took.
    pub sim_secs: f64,
    /// Simulated cycles the dispatch took.
    pub cycles: f64,
    /// Kernels launched.
    pub kernels: u64,
    /// L2 hits of the dispatch's traced accesses.
    pub l2_hits: u64,
    /// L2 misses of the dispatch's traced accesses.
    pub l2_misses: u64,
}

impl GpuDispatch {
    /// Fraction of traced L2 accesses that hit (NaN when the dispatch
    /// traced none — analytic kernels report no cache behaviour).
    pub fn l2_hit_ratio(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            return f64::NAN;
        }
        self.l2_hits as f64 / total as f64
    }
}

/// Backend state persisting across dispatches.
///
/// CPU backends are stateless here (the worker pool is process-global);
/// the simulated GPU device, with its clock and L2 contents, lives in
/// the session — so a serving process accumulates warm cache state over
/// batches exactly like a training run accumulates it over epochs,
/// fixing the cold-device-per-dispatch behaviour PR 5 noted.
#[derive(Default)]
pub struct BackendSession {
    gpu_spec: Option<DeviceSpec>,
    gpu: Option<GpuDevice>,
    faults: Option<DispatchFaults>,
}

impl BackendSession {
    /// A session whose GPU (if used) is the paper's Tesla K80 die.
    pub fn new() -> Self {
        BackendSession::default()
    }

    /// A session whose GPU is built from `spec` (`None` = Tesla K80).
    pub fn with_gpu_spec(spec: Option<DeviceSpec>) -> Self {
        BackendSession { gpu_spec: spec, gpu: None, faults: None }
    }

    /// Installs a fault gate on the session; every subsequent
    /// [`ComputeBackend::try_dispatch`] draws one decision from `plan`.
    /// Replaces any previously installed gate (and resets its dispatch
    /// sequence number).
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(DispatchFaults::new(plan));
    }

    /// The installed fault gate, if any.
    pub fn faults(&self) -> Option<&DispatchFaults> {
        self.faults.as_ref()
    }

    /// Draws one fault decision for a dispatch on `backend` without
    /// running anything: `Err` when the plan kills the backend at this
    /// point in the sequence, otherwise the straggler dilation to apply
    /// via [`apply_dilation`] (`1.0` = healthy or no gate installed).
    ///
    /// This is the session-state half of [`ComputeBackend::try_dispatch`],
    /// split out so callers that guard the session with a lock can draw
    /// the (serialized, deterministic) decision under a short critical
    /// section and run the dispatch itself outside it — holding a mutex
    /// across a dispatch serializes all scoring behind one request.
    pub fn draw_fault(&mut self, backend: &ComputeBackend) -> Result<f64, BackendFault> {
        match self.faults.as_mut() {
            Some(gate) => gate.next(backend),
            None => Ok(1.0),
        }
    }

    /// The session's persistent simulated device, constructed lazily on
    /// first use.
    pub fn gpu_device(&mut self) -> &mut GpuDevice {
        let spec = &self.gpu_spec;
        self.gpu.get_or_insert_with(|| match spec {
            Some(s) => GpuDevice::new(s.clone()),
            None => GpuDevice::tesla_k80(),
        })
    }

    /// Consumes the session, yielding its (lazily built) device — the
    /// construction path for code that manages a device directly.
    pub fn into_gpu_device(mut self) -> GpuDevice {
        self.gpu_device();
        match self.gpu {
            Some(dev) => dev,
            None => GpuDevice::tesla_k80(),
        }
    }
}

/// How much work one dispatch carries — the currency of
/// [`CostModel::estimate_secs`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Workload {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes of global traffic (GPU roofline term).
    pub bytes: f64,
    /// Kernel launches (each pays the GPU launch overhead).
    pub kernels: f64,
}

/// The shared analytic cost model: modeled CPU rates and the gpusim
/// roofline behind one estimate, so the batcher, the router, and any
/// future heterogeneous scheduler all price work identically.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Per-dispatch overhead of the sequential CPU backend, seconds.
    pub cpu_seq_dispatch_secs: f64,
    /// Per-dispatch overhead of the pooled parallel CPU backend, seconds.
    pub cpu_par_dispatch_secs: f64,
    /// Modeled per-core floating-point rate, flops/s.
    pub cpu_flops_per_core: f64,
    /// Parallel efficiency of the pool's extra cores.
    pub cpu_par_efficiency: f64,
    gpu: sgd_gpusim::CostModel,
}

impl CostModel {
    /// The shared model over the given GPU spec and the default CPU
    /// constants.
    pub fn new(gpu_spec: DeviceSpec) -> Self {
        CostModel {
            cpu_seq_dispatch_secs: CPU_SEQ_DISPATCH_SECS,
            cpu_par_dispatch_secs: CPU_PAR_DISPATCH_SECS,
            cpu_flops_per_core: CPU_FLOPS_PER_CORE,
            cpu_par_efficiency: CPU_PAR_EFFICIENCY,
            gpu: sgd_gpusim::CostModel::new(gpu_spec),
        }
    }

    /// The GPU-side roofline model.
    pub fn gpu(&self) -> &sgd_gpusim::CostModel {
        &self.gpu
    }

    /// Modeled aggregate flop rate of a `threads`-wide CPU backend.
    pub fn cpu_rate(&self, threads: usize) -> f64 {
        self.cpu_flops_per_core
            * (1.0 + self.cpu_par_efficiency * (threads.max(1).saturating_sub(1)) as f64)
    }

    /// Modeled seconds `backend` would take to dispatch `w`.
    pub fn estimate_secs(&self, backend: &ComputeBackend, w: &Workload) -> f64 {
        match *backend {
            ComputeBackend::CpuSeq => self.cpu_seq_dispatch_secs + w.flops / self.cpu_rate(1),
            ComputeBackend::CpuPar { threads } => {
                self.cpu_par_dispatch_secs + w.flops / self.cpu_rate(threads)
            }
            ComputeBackend::GpuSim => self.gpu.dispatch_secs(w.kernels, w.flops, w.bytes),
        }
    }

    /// The backend among `candidates` this model predicts fastest for
    /// `w` (first wins ties; `None` only for an empty candidate list) —
    /// the router's whole policy.
    pub fn fastest<'a, I>(&self, candidates: I, w: &Workload) -> Option<ComputeBackend>
    where
        I: IntoIterator<Item = &'a ComputeBackend>,
    {
        let mut best: Option<(ComputeBackend, f64)> = None;
        for b in candidates {
            let secs = self.estimate_secs(b, w);
            let better = match best {
                Some((_, s)) => secs < s,
                None => true,
            };
            if better {
                best = Some((*b, secs));
            }
        }
        best.map(|(b, _)| b)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new(DeviceSpec::tesla_k80())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use sgd_linalg::Matrix;

    struct GemvJob<'a> {
        a: &'a Matrix,
        x: &'a [f64],
    }

    impl ExecTask for GemvJob<'_> {
        type Out = Vec<f64>;
        fn run<E: Exec>(&mut self, e: &mut E) -> Vec<f64> {
            let mut y = vec![0.0; self.a.rows()];
            e.gemv(self.a, self.x, &mut y);
            y
        }
    }

    #[test]
    fn labels_and_device_round_trip() {
        for (backend, device) in [
            (ComputeBackend::CpuSeq, DeviceKind::CpuSeq),
            (ComputeBackend::CpuPar { threads: 4 }, DeviceKind::CpuPar),
            (ComputeBackend::GpuSim, DeviceKind::Gpu),
        ] {
            assert_eq!(backend.device_kind(), device);
            assert_eq!(ComputeBackend::from_device(device, 4), backend);
        }
        assert_eq!(ComputeBackend::CpuPar { threads: 4 }.label(), "cpu-par4");
        assert_eq!(ComputeBackend::GpuSim.label(), "gpu-sim");
        let set = ComputeBackend::fixed_set(0);
        assert_eq!(set[1], ComputeBackend::CpuPar { threads: 1 });
    }

    #[test]
    fn every_backend_computes_the_same_bits() {
        let a = Matrix::from_fn(33, 7, |i, j| ((i * 7 + j * 3) as f64).sin());
        let x: Vec<f64> = (0..7).map(|i| (i as f64 * 0.5).cos()).collect();
        let mut sess = BackendSession::new();
        let mut job = GemvJob { a: &a, x: &x };
        let seq = ComputeBackend::CpuSeq.dispatch(&mut sess, &mut job).out;
        let par = ComputeBackend::CpuPar { threads: 2 }.dispatch(&mut sess, &mut job).out;
        let gpu = ComputeBackend::GpuSim.dispatch(&mut sess, &mut job).out;
        assert_eq!(seq.len(), par.len());
        for ((s, p), g) in seq.iter().zip(&par).zip(&gpu) {
            assert_eq!(s.to_bits(), p.to_bits(), "par row disagrees");
            assert_eq!(s.to_bits(), g.to_bits(), "gpu row disagrees");
        }
    }

    #[test]
    fn gpu_dispatch_accounts_on_the_simulated_clock() {
        let a = Matrix::from_fn(8, 8, |i, j| (i + j) as f64);
        let x = vec![2.0; 8];
        let mut sess = BackendSession::new();
        let mut job = GemvJob { a: &a, x: &x };
        let d1 = ComputeBackend::GpuSim.dispatch(&mut sess, &mut job);
        let g1 = d1.gpu.expect("gpu dispatch has device accounting");
        assert!(g1.sim_secs > 0.0);
        assert!(g1.kernels >= 1);
        // The session's device persists: the clock keeps advancing.
        let d2 = ComputeBackend::GpuSim.dispatch(&mut sess, &mut job);
        let g2 = d2.gpu.expect("second dispatch accounted");
        assert_eq!(g1.cycles.to_bits(), g2.cycles.to_bits(), "identical work, identical cost");
        assert!(sess.gpu_device().elapsed_secs() >= g1.sim_secs + g2.sim_secs - 1e-12);
        let d = ComputeBackend::CpuSeq.dispatch(&mut sess, &mut job);
        assert!(d.gpu.is_none());
    }

    #[test]
    fn cost_model_reproduces_the_serving_constants() {
        let m = CostModel::default();
        let w = Workload { flops: 1.2e6, bytes: 9.6e6, kernels: 1.0 };
        let seq = m.estimate_secs(&ComputeBackend::CpuSeq, &w);
        assert_eq!(seq, CPU_SEQ_DISPATCH_SECS + w.flops / CPU_FLOPS_PER_CORE);
        let par = m.estimate_secs(&ComputeBackend::CpuPar { threads: 4 }, &w);
        let rate = CPU_FLOPS_PER_CORE * (1.0 + CPU_PAR_EFFICIENCY * 3.0);
        assert_eq!(par, CPU_PAR_DISPATCH_SECS + w.flops / rate);
        let gpu = m.estimate_secs(&ComputeBackend::GpuSim, &w);
        assert_eq!(gpu, m.gpu().dispatch_secs(1.0, w.flops, w.bytes));
    }

    #[test]
    fn fastest_picks_cpu_for_tiny_and_gpu_for_huge_batches() {
        let m = CostModel::default();
        let set = ComputeBackend::fixed_set(4);
        // One request, 300 features: launch overhead dwarfs the work.
        let tiny = Workload { flops: 600.0, bytes: 4.8e3, kernels: 1.0 };
        assert_eq!(m.fastest(&set, &tiny), Some(ComputeBackend::CpuSeq));
        // A large dense batch: the GPU's rate wins despite the launch.
        let huge = Workload { flops: 2.0e8, bytes: 8.0e7, kernels: 1.0 };
        assert_eq!(m.fastest(&set, &huge), Some(ComputeBackend::GpuSim));
        assert_eq!(m.fastest(&[], &tiny), None);
    }

    #[test]
    fn try_dispatch_without_a_gate_never_fails() {
        let a = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let x = vec![1.0; 4];
        let mut sess = BackendSession::new();
        let mut job = GemvJob { a: &a, x: &x };
        let d =
            ComputeBackend::CpuSeq.try_dispatch(&mut sess, &mut job).expect("no gate installed");
        assert_eq!(d.fault_dilation, 1.0);
        assert!(sess.faults().is_none());
    }

    #[test]
    fn fault_gate_kills_and_dilates_deterministically() {
        let a = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let x = vec![1.0; 4];
        let run = || {
            let mut sess = BackendSession::new();
            sess.install_faults(
                FaultPlan::default().with_seed(7).with_worker_death(0, 2).with_straggler(2, 4.0),
            );
            let mut job = GemvJob { a: &a, x: &x };
            // Dispatches 0 and 1 on the straggling GPU slot succeed with
            // a 4x dilation on both clocks.
            let d0 = ComputeBackend::GpuSim
                .try_dispatch(&mut sess, &mut job)
                .expect("straggler still completes");
            assert_eq!(d0.fault_dilation, 4.0);
            let g = d0.gpu.as_ref().expect("gpu accounting survives dilation");
            assert!(g.sim_secs > 0.0);
            let d1 = ComputeBackend::CpuSeq
                .try_dispatch(&mut sess, &mut job)
                .expect("cpu-seq alive before its death epoch");
            assert_eq!(d1.fault_dilation, 1.0);
            // From dispatch 2 onward the cpu-seq slot is dead.
            let err = ComputeBackend::CpuSeq
                .try_dispatch(&mut sess, &mut job)
                .expect_err("cpu-seq dead from dispatch 2");
            assert_eq!(err, BackendFault::BackendDown { dispatch: 2 });
            assert_eq!(sess.faults().map(|f| f.dispatches()), Some(3));
            (d0.gpu.map(|g| g.sim_secs.to_bits()), err)
        };
        assert_eq!(run(), run(), "same plan, same dispatch order, same bits");
    }

    #[test]
    fn session_spec_reaches_the_device() {
        let spec = DeviceSpec::small_gpu();
        let name = spec.name;
        let mut sess = BackendSession::with_gpu_spec(Some(spec));
        assert_eq!(sess.gpu_device().spec().name, name);
        let dev = BackendSession::with_gpu_spec(None).into_gpu_device();
        assert_eq!(dev.spec().name, GpuDevice::tesla_k80().spec().name);
    }
}
