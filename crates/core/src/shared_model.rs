//! The lock-free shared model of the asynchronous optimizers.

use std::sync::atomic::{AtomicU64, Ordering};

use sgd_linalg::Scalar;

/// A model vector shared by concurrent Hogwild threads without any locks.
///
/// Each coordinate is an `f64` stored in an `AtomicU64` cell accessed with
/// `Relaxed` ordering — the Rust-sound equivalent of Hogwild's benign
/// races. [`SharedModel::add`] is deliberately a *plain* read-modify-write
/// (load, add, store), not a `fetch_add` loop: concurrent updates to the
/// same coordinate can be lost, exactly as in the paper's lock-free
/// implementation. [`SharedModel::fetch_add`] provides the CAS-based
/// lossless variant for the ablation benches.
pub struct SharedModel {
    cells: Vec<AtomicU64>,
}

impl SharedModel {
    /// A shared model initialized from `w`.
    pub fn from_slice(w: &[Scalar]) -> Self {
        SharedModel { cells: w.iter().map(|&v| AtomicU64::new(v.to_bits())).collect() }
    }

    /// Number of coordinates.
    pub fn dim(&self) -> usize {
        self.cells.len()
    }

    /// Racy read of coordinate `i`.
    #[inline]
    pub fn read(&self, i: usize) -> Scalar {
        Scalar::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    /// Racy write of coordinate `i`.
    #[inline]
    pub fn write(&self, i: usize, v: Scalar) {
        self.cells[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Hogwild update `w[i] += delta` as a plain load/add/store; concurrent
    /// updates may be lost (the algorithm tolerates this).
    #[inline]
    pub fn add(&self, i: usize, delta: Scalar) {
        let v = self.read(i) + delta;
        self.write(i, v);
    }

    /// Lossless update via compare-and-swap (ablation variant).
    #[inline]
    pub fn fetch_add(&self, i: usize, delta: Scalar) {
        let cell = &self.cells[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (Scalar::from_bits(cur) + delta).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Copies the current model into a plain vector (racy snapshot).
    pub fn snapshot(&self) -> Vec<Scalar> {
        self.cells.iter().map(|c| Scalar::from_bits(c.load(Ordering::Relaxed))).collect()
    }

    /// Snapshot into an existing buffer without allocating.
    pub fn snapshot_into(&self, out: &mut [Scalar]) {
        assert_eq!(out.len(), self.cells.len(), "snapshot buffer size mismatch");
        for (o, c) in out.iter_mut().zip(&self.cells) {
            *o = Scalar::from_bits(c.load(Ordering::Relaxed));
        }
    }

    /// Overwrites the model from a plain vector.
    pub fn store_from(&self, w: &[Scalar]) {
        assert_eq!(w.len(), self.cells.len(), "model size mismatch");
        for (c, &v) in self.cells.iter().zip(w) {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_trips_values() {
        let m = SharedModel::from_slice(&[1.5, -2.25, 0.0]);
        assert_eq!(m.dim(), 3);
        assert_eq!(m.read(1), -2.25);
        m.write(2, 7.0);
        m.add(0, 0.5);
        assert_eq!(m.snapshot(), vec![2.0, -2.25, 7.0]);
    }

    #[test]
    fn snapshot_into_matches_snapshot() {
        let m = SharedModel::from_slice(&[1.0, 2.0]);
        let mut buf = vec![0.0; 2];
        m.snapshot_into(&mut buf);
        assert_eq!(buf, m.snapshot());
    }

    #[test]
    fn store_from_overwrites() {
        let m = SharedModel::from_slice(&[0.0; 4]);
        m.store_from(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.snapshot(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fetch_add_is_lossless_under_contention() {
        let m = Arc::new(SharedModel::from_slice(&[0.0]));
        let threads = 8;
        let per = 10_000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..per {
                        m.fetch_add(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(m.read(0), (threads * per) as f64);
    }

    #[test]
    fn plain_add_may_lose_updates_but_stays_sane() {
        // The racy add can lose increments; it must never corrupt the value
        // (each read/write is atomic) and single-threaded it is exact.
        let m = SharedModel::from_slice(&[0.0]);
        for _ in 0..1000 {
            m.add(0, 1.0);
        }
        assert_eq!(m.read(0), 1000.0);

        let m = Arc::new(SharedModel::from_slice(&[0.0]));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..50_000 {
                        m.add(0, 1.0);
                    }
                });
            }
        });
        let v = m.read(0);
        assert!(v > 0.0 && v <= 200_000.0, "value {v}");
        assert_eq!(v.fract(), 0.0, "value must be a whole count, got {v}");
    }

    #[test]
    #[should_panic(expected = "model size mismatch")]
    fn store_from_checks_len() {
        SharedModel::from_slice(&[0.0; 2]).store_from(&[1.0]);
    }

    #[test]
    fn add_and_fetch_add_agree_bit_for_bit_single_threaded() {
        // Uncontended, the lossy plain RMW and the CAS loop must walk the
        // exact same float trajectory — same rounding at every step.
        let lossy = SharedModel::from_slice(&[0.25, -3.0]);
        let lossless = SharedModel::from_slice(&[0.25, -3.0]);
        let mut delta = 0.1;
        for k in 0..1000 {
            let i = k % 2;
            lossy.add(i, delta);
            lossless.fetch_add(i, delta);
            delta = -delta * 0.999;
        }
        for i in 0..2 {
            assert_eq!(
                lossy.read(i).to_bits(),
                lossless.read(i).to_bits(),
                "coordinate {i} diverged"
            );
        }
    }

    #[test]
    fn snapshot_round_trips_every_bit_pattern() {
        // snapshot/store_from must be bit-transparent, including the values
        // float arithmetic would normalize away: NaN payloads, -0.0,
        // denormals, and infinities.
        let specials = [
            f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with a payload
            -0.0,
            f64::MIN_POSITIVE / 2.0, // denormal
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.0e300,
            -2.5,
        ];
        let m = SharedModel::from_slice(&specials);
        let snap = m.snapshot();
        for (orig, got) in specials.iter().zip(&snap) {
            assert_eq!(orig.to_bits(), got.to_bits(), "snapshot changed bits");
        }
        let m2 = SharedModel::from_slice(&[0.0; 8]);
        m2.store_from(&snap);
        let mut buf = [0.0; 8];
        m2.snapshot_into(&mut buf);
        for (orig, got) in specials.iter().zip(&buf) {
            assert_eq!(orig.to_bits(), got.to_bits(), "store_from/snapshot_into changed bits");
        }
    }
}
