//! Synchronous SGD (full-batch gradient descent per epoch).
//!
//! The paper's synchronous configuration: the optimization epoch is a
//! sequence of blocking linear-algebra primitives (Algorithm 2), so the
//! model is updated once per pass and statistical efficiency is identical
//! across devices — only hardware efficiency differs. The identical task
//! code runs on all three devices through the `Exec` abstraction.

use sgd_gpusim::kernels::GpuExec;
use sgd_linalg::{CpuExec, Exec};
use sgd_models::{Batch, Task};

use crate::backend::{BackendSession, ComputeBackend, ExecTask};
use crate::config::{DeviceKind, RunOptions};
use crate::convergence::LossTrace;
use crate::faults::{sync_epoch_faults, FaultCounters, FaultPlan, SyncFaultDecision};
use crate::metrics::{EpochMetrics, EpochObserver, GpuEpochProbe, NullObserver, Recorder};
use crate::report::RunReport;
use crate::supervisor::Supervisor;

/// Runs synchronous (batch) gradient descent for `task` over `batch` on
/// the given device with step size `alpha`.
///
/// GPU time is simulated kernel time; because the synchronous access
/// pattern is identical every epoch, the GPU run traces the first two
/// epochs (cold and warm cache) and replays the warm epoch cost for the
/// remainder while still computing functionally exact updates.
#[deprecated(note = "dispatch through `Engine::run` with `Strategy::Sync`")]
pub fn run_sync<T: Task>(
    task: &T,
    batch: &Batch<'_>,
    device: DeviceKind,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    sync_observed(task, batch, device, alpha, opts, &mut NullObserver)
}

pub(crate) fn sync_observed<T: Task>(
    task: &T,
    batch: &Batch<'_>,
    device: DeviceKind,
    alpha: f64,
    opts: &RunOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    match ComputeBackend::from_device(device, opts.threads) {
        ComputeBackend::GpuSim => gpu_run(task, batch, alpha, opts, obs),
        // Both CPU corners collapse into one arm: the backend owns the
        // seq-vs-pooled-par distinction (including installing the kernel
        // width on the persistent pool around every dispatch, so kernels
        // running on pool workers honor `opts.threads`).
        backend => cpu_run(task, batch, backend, alpha, opts, obs),
    }
}

fn label<T: Task>(task: &T, device: DeviceKind) -> String {
    format!("{} sync {}", task.name(), device.label())
}

/// Full-batch loss evaluation as a backend job.
struct LossJob<'a, T: Task> {
    task: &'a T,
    batch: &'a Batch<'a>,
    w: &'a [f64],
}

impl<T: Task> ExecTask for LossJob<'_, T> {
    type Out = f64;
    fn run<E: Exec>(&mut self, e: &mut E) -> f64 {
        self.task.loss(e, self.batch, self.w)
    }
}

/// One synchronous epoch (gradient + fault-adjusted update) as a backend
/// job; the kernel stream is identical on every backend, which is what
/// makes the loss trajectory device-independent.
struct SyncEpochJob<'a, T: Task> {
    task: &'a T,
    batch: &'a Batch<'a>,
    alpha: f64,
    epoch: usize,
    faults: Option<&'a FaultPlan>,
    w: &'a mut Vec<f64>,
    g: &'a mut Vec<f64>,
    prev_g: &'a mut Vec<f64>,
    fc: &'a mut FaultCounters,
}

impl<T: Task> ExecTask for SyncEpochJob<'_, T> {
    type Out = ();
    fn run<E: Exec>(&mut self, e: &mut E) {
        self.task.gradient(e, self.batch, self.w, self.g);
        let d = match self.faults {
            Some(plan) => sync_epoch_faults(plan, self.epoch, self.fc),
            None => SyncFaultDecision::none(),
        };
        if !d.dropped {
            let step = if d.stale { &*self.prev_g } else { &*self.g };
            e.axpy(-self.alpha * d.alpha_factor, step, self.w);
        }
        if !d.stale {
            std::mem::swap(self.g, self.prev_g);
        }
    }
}

fn cpu_run<T: Task>(
    task: &T,
    batch: &Batch<'_>,
    backend: ComputeBackend,
    alpha: f64,
    opts: &RunOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    let device = backend.device_kind();
    let mut sess = BackendSession::new();
    let mut w = task.init_model();
    let mut g = vec![0.0; task.dim()];
    // Last applied gradient, kept for stale-gradient-replay faults.
    let mut prev_g = vec![0.0; task.dim()];
    let mut trace = LossTrace::new();
    let initial_loss = backend.dispatch(&mut sess, &mut LossJob { task, batch, w: &w }).out;
    trace.push(0.0, initial_loss);
    let mut rec = Recorder::new(obs);
    let mut sup = Supervisor::new(opts, initial_loss);
    let faults = opts.faults.active();
    let workers = opts.threads.max(1);
    let mut opt_seconds = 0.0;
    for epoch in 0..opts.max_epochs {
        if let Some(plan) = faults {
            if plan.barrier_stalled(workers, epoch) {
                // A dead worker never reaches the barrier: the epoch can
                // never complete.
                sup.abort(epoch + 1);
                break;
            }
        }
        let mut fc = FaultCounters::default();
        let mut job = SyncEpochJob {
            task,
            batch,
            alpha,
            epoch,
            faults,
            w: &mut w,
            g: &mut g,
            prev_g: &mut prev_g,
            fc: &mut fc,
        };
        let mut epoch_secs = backend.dispatch(&mut sess, &mut job).wall_secs;
        if let Some(plan) = faults {
            // The barrier waits for the slowest straggler.
            let dil = plan.sync_dilation(workers);
            fc.straggler_delay_secs = epoch_secs * (dil - 1.0);
            epoch_secs *= dil;
        }
        opt_seconds += epoch_secs;
        // Loss evaluation is excluded from timing.
        let loss = backend.dispatch(&mut sess, &mut LossJob { task, batch, w: &w }).out;
        trace.push(opt_seconds, loss);
        rec.record(EpochMetrics { faults: fc, ..EpochMetrics::new(epoch + 1, opt_seconds, loss) });
        if sup.observe(epoch + 1, opt_seconds, loss, &w, &trace, &mut rec) {
            break;
        }
    }
    let verdict = sup.finish();
    RunReport {
        label: label(task, device),
        device,
        step_size: alpha,
        trace,
        opt_seconds,
        timed_out: verdict.timed_out,
        metrics: rec.finish(),
        outcome: verdict.outcome,
        best_model: verdict.best_model,
    }
}

fn gpu_run<T: Task>(
    task: &T,
    batch: &Batch<'_>,
    alpha: f64,
    opts: &RunOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    let mut dev = opts.gpu_device();
    let mut eval = CpuExec::seq();
    let mut w = task.init_model();
    let mut g = vec![0.0; task.dim()];
    // Last applied gradient, kept for stale-gradient-replay faults.
    let mut prev_g = vec![0.0; task.dim()];
    let mut trace = LossTrace::new();
    let initial_loss = task.loss(&mut eval, batch, &w);
    trace.push(0.0, initial_loss);
    let mut rec = Recorder::new(obs);
    let mut probe = GpuEpochProbe::new();
    let mut sup = Supervisor::new(opts, initial_loss);
    let faults = opts.faults.active();
    let workers = opts.threads.max(1);
    let mut warm_epoch_cost = 0.0;
    for epoch in 0..opts.max_epochs {
        if let Some(plan) = faults {
            if plan.barrier_stalled(workers, epoch) {
                sup.abort(epoch + 1);
                break;
            }
        }
        let mut fc = FaultCounters::default();
        let d = match faults {
            Some(plan) => sync_epoch_faults(plan, epoch, &mut fc),
            None => SyncFaultDecision::none(),
        };
        probe.begin(&dev);
        let epoch_start = dev.elapsed_secs();
        if epoch < 2 {
            // Trace the real kernel stream (epoch 0 cold, epoch 1 warm L2).
            let t0 = dev.elapsed_secs();
            let mut e = GpuExec::new(&mut dev);
            task.gradient(&mut e, batch, &w, &mut g);
            if !d.dropped {
                let step = if d.stale { &prev_g } else { &g };
                e.axpy(-alpha * d.alpha_factor, step, &mut w);
            }
            warm_epoch_cost = dev.elapsed_secs() - t0;
        } else {
            // Identical access pattern: replay the warm-epoch cost while
            // computing the numerically identical update on the host.
            task.gradient(&mut eval, batch, &w, &mut g);
            if !d.dropped {
                let step = if d.stale { &prev_g } else { &g };
                eval.axpy(-alpha * d.alpha_factor, step, &mut w);
            }
            dev.advance_secs(warm_epoch_cost);
        }
        if !d.stale {
            std::mem::swap(&mut g, &mut prev_g);
        }
        if let Some(plan) = faults {
            // The device stream stalls until the slowest participant of
            // the synchronous step has finished.
            let dil = plan.sync_dilation(workers);
            fc.straggler_delay_secs = (dev.elapsed_secs() - epoch_start) * (dil - 1.0);
            dev.advance_secs(fc.straggler_delay_secs);
        }
        let (cycles, l2) = probe.end(&dev);
        let loss = task.loss(&mut eval, batch, &w);
        trace.push(dev.elapsed_secs(), loss);
        rec.record(EpochMetrics {
            simulated_cycles: cycles,
            l2_hit_ratio: l2,
            faults: fc,
            ..EpochMetrics::new(epoch + 1, dev.elapsed_secs(), loss)
        });
        if sup.observe(epoch + 1, dev.elapsed_secs(), loss, &w, &trace, &mut rec) {
            break;
        }
    }
    let verdict = sup.finish();
    RunReport {
        label: label(task, DeviceKind::Gpu),
        device: DeviceKind::Gpu,
        step_size: alpha,
        trace,
        opt_seconds: dev.elapsed_secs(),
        timed_out: verdict.timed_out,
        metrics: rec.finish(),
        outcome: verdict.outcome,
        best_model: verdict.best_model,
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // exercises the legacy shim entry points

    use super::*;
    use sgd_linalg::{CsrMatrix, Matrix};
    use sgd_models::{lr, svm, Examples};

    fn separable() -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(64, 4, |i, j| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            s * ((i * 7 + j * 3) % 5 + 1) as f64 / 5.0
        });
        let y: Vec<f64> = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        (x, y)
    }

    #[test]
    fn all_devices_produce_identical_statistics() {
        // Synchronous updates are deterministic: the loss trajectory must
        // be numerically identical across devices (paper: "the statistical
        // efficiency is identical in synchronous SGD").
        let (x, y) = separable();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 12, threads: 2, ..Default::default() };
        let seq = run_sync(&task, &b, DeviceKind::CpuSeq, 1.0, &opts);
        let par = run_sync(&task, &b, DeviceKind::CpuPar, 1.0, &opts);
        let gpu = run_sync(&task, &b, DeviceKind::Gpu, 1.0, &opts);
        let ls: Vec<f64> = seq.trace.points().iter().map(|&(_, l)| l).collect();
        let lp: Vec<f64> = par.trace.points().iter().map(|&(_, l)| l).collect();
        let lg: Vec<f64> = gpu.trace.points().iter().map(|&(_, l)| l).collect();
        assert_eq!(ls.len(), lp.len());
        assert_eq!(ls.len(), lg.len());
        for i in 0..ls.len() {
            assert!((ls[i] - lp[i]).abs() < 1e-9, "epoch {i}: {} vs {}", ls[i], lp[i]);
            assert!((ls[i] - lg[i]).abs() < 1e-12, "epoch {i}: {} vs {}", ls[i], lg[i]);
        }
    }

    #[test]
    fn loss_decreases_on_separable_data() {
        let (x, y) = separable();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = svm(4);
        let opts = RunOptions { max_epochs: 40, ..Default::default() };
        let rep = run_sync(&task, &b, DeviceKind::CpuSeq, 1.0, &opts);
        assert!(rep.best_loss() < 0.5, "loss {}", rep.best_loss());
        assert!(rep.time_per_epoch() > 0.0);
    }

    #[test]
    fn sparse_path_matches_dense_path() {
        let (x, y) = separable();
        let sparse = CsrMatrix::from_dense(&x);
        let bd = Batch::new(Examples::Dense(&x), &y);
        let bs = Batch::new(Examples::Sparse(&sparse), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 8, ..Default::default() };
        let rd = run_sync(&task, &bd, DeviceKind::CpuSeq, 0.5, &opts);
        let rs = run_sync(&task, &bs, DeviceKind::CpuSeq, 0.5, &opts);
        for (a, b) in rd.trace.points().iter().zip(rs.trace.points()) {
            assert!((a.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn early_stop_at_target_loss() {
        let (x, y) = separable();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 500, target_loss: Some(0.2), ..Default::default() };
        let rep = run_sync(&task, &b, DeviceKind::CpuSeq, 1.0, &opts);
        assert!(!rep.timed_out);
        assert!(rep.trace.epochs() < 500, "stopped early");
        let last = rep.trace.points().last().expect("nonempty").1;
        assert!(last <= 0.2 * 1.01 + 1e-12);
    }

    #[test]
    fn divergent_step_size_terminates() {
        // Non-separable data (conflicting labels on identical examples):
        // a huge step size can never reach a near-zero loss.
        let (x, mut y) = separable();
        for i in (0..y.len()).step_by(4) {
            y[i] = -y[i];
        }
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 50, target_loss: Some(1e-6), ..Default::default() };
        let rep = run_sync(&task, &b, DeviceKind::CpuSeq, 1e6, &opts);
        // The run must terminate without reporting convergence to ~0 loss.
        assert!(rep.summarize(0.0).time_to_1pct().is_none());
        assert!(rep.trace.epochs() <= 50);
        // Divergence is no longer a silent break: it is classified.
        assert!(rep.diverged(), "outcome: {:?}", rep.outcome);
    }

    #[test]
    fn straggler_stalls_the_sync_barrier_by_its_full_slowdown() {
        // Simulated GPU time is deterministic, so the dilation is exact:
        // a 3x straggler stretches every synchronous epoch by 3x.
        let (x, y) = separable();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let clean = RunOptions { max_epochs: 6, plateau: None, ..Default::default() };
        let faulty = RunOptions {
            faults: crate::FaultPlan::default().with_straggler(0, 3.0),
            ..clean.clone()
        };
        let rc = run_sync(&task, &b, DeviceKind::Gpu, 0.5, &clean);
        let rf = run_sync(&task, &b, DeviceKind::Gpu, 0.5, &faulty);
        assert_eq!(rc.trace.epochs(), rf.trace.epochs(), "statistics unchanged");
        assert!(
            (rf.opt_seconds - 3.0 * rc.opt_seconds).abs() < 1e-9 * rc.opt_seconds.max(1.0),
            "{} vs 3 x {}",
            rf.opt_seconds,
            rc.opt_seconds
        );
        let delay = rf.metrics.total_faults().straggler_delay_secs;
        assert!((delay - 2.0 * rc.opt_seconds).abs() < 1e-9 * rc.opt_seconds.max(1.0));
    }

    #[test]
    fn worker_death_aborts_the_sync_barrier() {
        let (x, y) = separable();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions {
            max_epochs: 10,
            faults: crate::FaultPlan::default().with_worker_death(0, 2),
            ..Default::default()
        };
        let rep = run_sync(&task, &b, DeviceKind::CpuSeq, 0.5, &opts);
        assert_eq!(rep.outcome, crate::RunOutcome::FaultAborted { epoch: 3 });
        assert_eq!(rep.trace.epochs(), 2, "epochs 0 and 1 completed before the death");
    }

    #[test]
    fn dropped_and_stale_updates_are_counted() {
        let (x, y) = separable();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions {
            max_epochs: 40,
            plateau: None,
            faults: crate::FaultPlan::default().with_seed(3).with_drops(0.3).with_stale_reads(0.3),
            ..Default::default()
        };
        let rep = run_sync(&task, &b, DeviceKind::CpuSeq, 0.5, &opts);
        let total = rep.metrics.total_faults();
        assert!(total.dropped_updates > 0, "40 epochs at 30% drop rate");
        assert!(total.stale_reads > 0, "40 epochs at 30% stale rate");
    }

    #[test]
    fn gpu_epochs_have_consistent_cost() {
        let (x, y) = separable();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 10, ..Default::default() };
        let rep = run_sync(&task, &b, DeviceKind::Gpu, 0.5, &opts);
        let pts = rep.trace.points();
        // Epoch costs after the warm-up are exactly equal (replayed).
        let d3 = pts[3].0 - pts[2].0;
        let d9 = pts[9].0 - pts[8].0;
        assert!((d3 - d9).abs() < 1e-15, "{d3} vs {d9}");
        assert!(rep.opt_seconds > 0.0);
    }

    #[test]
    fn gpu_metrics_record_cycles_and_l2_every_epoch() {
        // Sparse data: the SpMV kernels are warp-traced, so the L2
        // counters move (the dense GEMM path is analytic and reports no
        // cache behaviour — its ratio stays NaN by design).
        let n = 64;
        let entries: Vec<Vec<(u32, f64)>> =
            (0..n).map(|i| vec![((i % 4) as u32, if i % 2 == 0 { 1.0 } else { -1.0 })]).collect();
        let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let xs = CsrMatrix::from_row_entries(n, 4, &entries);
        let b = Batch::new(Examples::Sparse(&xs), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 6, ..Default::default() };
        let rep = run_sync(&task, &b, DeviceKind::Gpu, 0.5, &opts);
        let m = &rep.metrics;
        assert_eq!(m.epochs.len(), rep.trace.epochs());
        for e in &m.epochs {
            assert!(e.simulated_cycles > 0.0, "epoch {}", e.epoch);
            assert!(e.l2_hit_ratio.is_finite(), "epoch {}", e.epoch);
            assert_eq!(e.update_conflicts, 0, "sync runs have no racy updates");
        }
        // Replayed epochs carry the traced warm-epoch ratio forward.
        assert_eq!(m.epochs[2].l2_hit_ratio, m.epochs[1].l2_hit_ratio);
        // Replay advances the clock, so cycle deltas match the warm epoch.
        assert!((m.epochs[2].simulated_cycles - m.epochs[1].simulated_cycles).abs() < 1e-6);
    }

    #[test]
    fn cpu_metrics_match_trace() {
        let (x, y) = separable();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 5, ..Default::default() };
        let rep = run_sync(&task, &b, DeviceKind::CpuSeq, 0.5, &opts);
        assert_eq!(rep.metrics.epochs.len(), rep.trace.epochs());
        for (e, p) in rep.metrics.epochs.iter().zip(&rep.trace.points()[1..]) {
            assert_eq!(e.loss, p.1);
            assert_eq!(e.elapsed_secs, p.0);
            assert!(e.simulated_cycles.is_nan(), "wall runs have no cycle model");
        }
    }
}
