//! Synchronous SGD (full-batch gradient descent per epoch).
//!
//! The paper's synchronous configuration: the optimization epoch is a
//! sequence of blocking linear-algebra primitives (Algorithm 2), so the
//! model is updated once per pass and statistical efficiency is identical
//! across devices — only hardware efficiency differs. The identical task
//! code runs on all three devices through the `Exec` abstraction.

use std::time::Instant;

use sgd_gpusim::kernels::GpuExec;
use sgd_linalg::{CpuExec, Exec};
use sgd_models::{Batch, Task};

use crate::config::{DeviceKind, RunOptions};
use crate::convergence::LossTrace;
use crate::pool::with_threads;
use crate::report::RunReport;

/// Runs synchronous (batch) gradient descent for `task` over `batch` on
/// the given device with step size `alpha`.
///
/// GPU time is simulated kernel time; because the synchronous access
/// pattern is identical every epoch, the GPU run traces the first two
/// epochs (cold and warm cache) and replays the warm epoch cost for the
/// remainder while still computing functionally exact updates.
pub fn run_sync<T: Task>(
    task: &T,
    batch: &Batch<'_>,
    device: DeviceKind,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    match device {
        DeviceKind::CpuSeq => cpu_run(task, batch, CpuExec::seq(), device, alpha, opts),
        DeviceKind::CpuPar => with_threads(opts.threads, || {
            cpu_run(task, batch, CpuExec::par(), device, alpha, opts)
        }),
        DeviceKind::Gpu => gpu_run(task, batch, alpha, opts),
    }
}

fn label<T: Task>(task: &T, device: DeviceKind) -> String {
    format!("{} sync {}", task.name(), device.label())
}

fn cpu_run<T: Task>(
    task: &T,
    batch: &Batch<'_>,
    mut e: CpuExec,
    device: DeviceKind,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    let mut w = task.init_model();
    let mut g = vec![0.0; task.dim()];
    let mut trace = LossTrace::new();
    trace.push(0.0, task.loss(&mut e, batch, &w));
    let stop = opts.stop_loss();
    let mut opt_seconds = 0.0;
    let mut timed_out = true;
    for _ in 0..opts.max_epochs {
        let t0 = Instant::now();
        task.gradient(&mut e, batch, &w, &mut g);
        e.axpy(-alpha, &g, &mut w);
        opt_seconds += t0.elapsed().as_secs_f64();
        let loss = task.loss(&mut e, batch, &w); // excluded from timing
        trace.push(opt_seconds, loss);
        if !loss.is_finite() {
            break; // diverged; grid search will discard this step size
        }
        if stop.is_some_and(|s| loss <= s) {
            timed_out = false;
            break;
        }
        if opt_seconds > opts.max_secs || opts.plateaued(&trace) {
            break;
        }
    }
    if stop.is_none() {
        timed_out = false;
    }
    RunReport {
        label: label(task, device),
        device,
        step_size: alpha,
        trace,
        opt_seconds,
        timed_out,
        update_conflicts: None,
    }
}

fn gpu_run<T: Task>(task: &T, batch: &Batch<'_>, alpha: f64, opts: &RunOptions) -> RunReport {
    let mut dev = opts.gpu_device();
    let mut eval = CpuExec::seq();
    let mut w = task.init_model();
    let mut g = vec![0.0; task.dim()];
    let mut trace = LossTrace::new();
    trace.push(0.0, task.loss(&mut eval, batch, &w));
    let stop = opts.stop_loss();
    let mut warm_epoch_cost = 0.0;
    let mut timed_out = true;
    for epoch in 0..opts.max_epochs {
        if epoch < 2 {
            // Trace the real kernel stream (epoch 0 cold, epoch 1 warm L2).
            let t0 = dev.elapsed_secs();
            let mut e = GpuExec::new(&mut dev);
            task.gradient(&mut e, batch, &w, &mut g);
            e.axpy(-alpha, &g, &mut w);
            warm_epoch_cost = dev.elapsed_secs() - t0;
        } else {
            // Identical access pattern: replay the warm-epoch cost while
            // computing the numerically identical update on the host.
            task.gradient(&mut eval, batch, &w, &mut g);
            eval.axpy(-alpha, &g, &mut w);
            dev.advance_secs(warm_epoch_cost);
        }
        let loss = task.loss(&mut eval, batch, &w);
        trace.push(dev.elapsed_secs(), loss);
        if !loss.is_finite() {
            break;
        }
        if stop.is_some_and(|s| loss <= s) {
            timed_out = false;
            break;
        }
        if dev.elapsed_secs() > opts.max_secs || opts.plateaued(&trace) {
            break;
        }
    }
    if stop.is_none() {
        timed_out = false;
    }
    RunReport {
        label: label(task, DeviceKind::Gpu),
        device: DeviceKind::Gpu,
        step_size: alpha,
        trace,
        opt_seconds: dev.elapsed_secs(),
        timed_out,
        update_conflicts: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgd_linalg::{CsrMatrix, Matrix};
    use sgd_models::{lr, svm, Examples};

    fn separable() -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(64, 4, |i, j| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            s * ((i * 7 + j * 3) % 5 + 1) as f64 / 5.0
        });
        let y: Vec<f64> = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        (x, y)
    }

    #[test]
    fn all_devices_produce_identical_statistics() {
        // Synchronous updates are deterministic: the loss trajectory must
        // be numerically identical across devices (paper: "the statistical
        // efficiency is identical in synchronous SGD").
        let (x, y) = separable();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 12, threads: 2, ..Default::default() };
        let seq = run_sync(&task, &b, DeviceKind::CpuSeq, 1.0, &opts);
        let par = run_sync(&task, &b, DeviceKind::CpuPar, 1.0, &opts);
        let gpu = run_sync(&task, &b, DeviceKind::Gpu, 1.0, &opts);
        let ls: Vec<f64> = seq.trace.points().iter().map(|&(_, l)| l).collect();
        let lp: Vec<f64> = par.trace.points().iter().map(|&(_, l)| l).collect();
        let lg: Vec<f64> = gpu.trace.points().iter().map(|&(_, l)| l).collect();
        assert_eq!(ls.len(), lp.len());
        assert_eq!(ls.len(), lg.len());
        for i in 0..ls.len() {
            assert!((ls[i] - lp[i]).abs() < 1e-9, "epoch {i}: {} vs {}", ls[i], lp[i]);
            assert!((ls[i] - lg[i]).abs() < 1e-12, "epoch {i}: {} vs {}", ls[i], lg[i]);
        }
    }

    #[test]
    fn loss_decreases_on_separable_data() {
        let (x, y) = separable();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = svm(4);
        let opts = RunOptions { max_epochs: 40, ..Default::default() };
        let rep = run_sync(&task, &b, DeviceKind::CpuSeq, 1.0, &opts);
        assert!(rep.best_loss() < 0.5, "loss {}", rep.best_loss());
        assert!(rep.time_per_epoch() > 0.0);
    }

    #[test]
    fn sparse_path_matches_dense_path() {
        let (x, y) = separable();
        let sparse = CsrMatrix::from_dense(&x);
        let bd = Batch::new(Examples::Dense(&x), &y);
        let bs = Batch::new(Examples::Sparse(&sparse), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 8, ..Default::default() };
        let rd = run_sync(&task, &bd, DeviceKind::CpuSeq, 0.5, &opts);
        let rs = run_sync(&task, &bs, DeviceKind::CpuSeq, 0.5, &opts);
        for (a, b) in rd.trace.points().iter().zip(rs.trace.points()) {
            assert!((a.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn early_stop_at_target_loss() {
        let (x, y) = separable();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions {
            max_epochs: 500,
            target_loss: Some(0.2),
            ..Default::default()
        };
        let rep = run_sync(&task, &b, DeviceKind::CpuSeq, 1.0, &opts);
        assert!(!rep.timed_out);
        assert!(rep.trace.epochs() < 500, "stopped early");
        let last = rep.trace.points().last().expect("nonempty").1;
        assert!(last <= 0.2 * 1.01 + 1e-12);
    }

    #[test]
    fn divergent_step_size_terminates() {
        // Non-separable data (conflicting labels on identical examples):
        // a huge step size can never reach a near-zero loss.
        let (x, mut y) = separable();
        for i in (0..y.len()).step_by(4) {
            y[i] = -y[i];
        }
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 50, target_loss: Some(1e-6), ..Default::default() };
        let rep = run_sync(&task, &b, DeviceKind::CpuSeq, 1e6, &opts);
        // The run must terminate without reporting convergence to ~0 loss.
        assert!(rep.summarize(0.0).time_to_1pct().is_none());
        assert!(rep.trace.epochs() <= 50);
    }

    #[test]
    fn gpu_epochs_have_consistent_cost() {
        let (x, y) = separable();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 10, ..Default::default() };
        let rep = run_sync(&task, &b, DeviceKind::Gpu, 0.5, &opts);
        let pts = rep.trace.points();
        // Epoch costs after the warm-up are exactly equal (replayed).
        let d3 = pts[3].0 - pts[2].0;
        let d9 = pts[9].0 - pts[8].0;
        assert!((d3 - d9).abs() < 1e-15, "{d3} vs {d9}");
        assert!(rep.opt_seconds > 0.0);
    }
}
