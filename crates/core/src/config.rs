//! Run configuration shared by all optimizers.

/// The computing-architecture axis of the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// Single CPU thread.
    CpuSeq,
    /// Rayon-parallel CPU with the configured thread count.
    CpuPar,
    /// The simulated GPU.
    Gpu,
}

impl DeviceKind {
    /// Short label used in reports (`gpu`, `cpu-seq`, `cpu-par`).
    pub fn label(&self) -> &'static str {
        match self {
            DeviceKind::CpuSeq => "cpu-seq",
            DeviceKind::CpuPar => "cpu-par",
            DeviceKind::Gpu => "gpu",
        }
    }
}

/// Options shared by every optimizer run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Hard cap on epochs.
    pub max_epochs: usize,
    /// Hard cap on (wall-clock or simulated) optimization seconds; a run
    /// that exceeds it without reaching the 1 % threshold reports `∞`,
    /// like the paper's Table III.
    pub max_secs: f64,
    /// Stop early once the loss is within 1 % of `target_loss` (set from
    /// the reference optimum); `None` disables early stopping.
    pub target_loss: Option<f64>,
    /// CPU threads for the parallel configurations.
    pub threads: usize,
    /// RNG seed (example shuffling).
    pub seed: u64,
    /// GPU to simulate; `None` = a full Tesla K80. The reproduction
    /// harness passes a spec with launch overheads scaled to the dataset
    /// scale.
    pub gpu_spec: Option<sgd_gpusim::DeviceSpec>,
    /// Stop a run whose loss improved by less than `rel_tol` over the last
    /// `window` epochs (`(window, rel_tol)`); `None` disables. A plateaued
    /// run that had a convergence target counts as not converged (∞).
    pub plateau: Option<(usize, f64)>,
    /// Deterministic fault schedule injected by every runner; the default
    /// (empty) plan leaves all code paths bit-identical to a fault-free
    /// run.
    pub faults: crate::faults::FaultPlan,
    /// Kernel tier the run's linalg primitives dispatch to (the PR-9 SIMD
    /// axis, now selectable per training run): the engine installs it as
    /// the ambient tier around the whole dispatch, and backend dispatches
    /// propagate it to pool workers. The default `Scalar` keeps every
    /// existing trajectory bit-identical.
    pub tier: sgd_linalg::KernelTier,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_epochs: 200,
            max_secs: 30.0,
            target_loss: None,
            threads: num_threads(),
            seed: 42,
            gpu_spec: None,
            plateau: Some((50, 1e-4)),
            faults: crate::faults::FaultPlan::default(),
            tier: sgd_linalg::KernelTier::Scalar,
        }
    }
}

impl RunOptions {
    /// The loss value at which a run may stop early (1 % above target).
    pub fn stop_loss(&self) -> Option<f64> {
        self.target_loss.map(crate::convergence::threshold_loss_1pct)
    }

    /// `true` when the trace satisfies the configured plateau criterion.
    pub fn plateaued(&self, trace: &crate::convergence::LossTrace) -> bool {
        self.plateau.is_some_and(|(w, tol)| trace.plateaued(w, tol))
    }

    /// The GPU to simulate (one construction path: the backend session).
    pub fn gpu_device(&self) -> sgd_gpusim::GpuDevice {
        crate::backend::BackendSession::with_gpu_spec(self.gpu_spec.clone()).into_gpu_device()
    }

    /// A backend session simulating this configuration's GPU.
    pub fn backend_session(&self) -> crate::backend::BackendSession {
        crate::backend::BackendSession::with_gpu_spec(self.gpu_spec.clone())
    }
}

/// Default degree of parallelism: all logical CPUs.
pub fn num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(DeviceKind::Gpu.label(), "gpu");
        assert_eq!(DeviceKind::CpuSeq.label(), "cpu-seq");
        assert_eq!(DeviceKind::CpuPar.label(), "cpu-par");
    }

    #[test]
    fn defaults_are_sane() {
        let o = RunOptions::default();
        assert!(o.max_epochs > 0);
        assert!(o.threads >= 1);
        assert_eq!(o.stop_loss(), None);
    }

    #[test]
    fn stop_loss_is_one_percent_above_target() {
        let o = RunOptions { target_loss: Some(2.0), ..Default::default() };
        assert!((o.stop_loss().expect("target set") - 2.02).abs() < 1e-12);
    }
}
