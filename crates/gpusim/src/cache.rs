//! Set-associative LRU model of the GPU L2 cache.
//!
//! The K80's L2 is the only cache shared across SMs (there is no coherent
//! L1 for global loads — Section II), so a single L2 model suffices for
//! kernel-level cost accounting. Addresses are tracked at 128-byte-line
//! granularity (the transaction size of [`crate::CoalescingAnalyzer`]).

use crate::coalesce::LINE_BYTES;

/// A set-associative cache with LRU replacement, indexed by line number.
#[derive(Clone, Debug)]
pub struct L2Cache {
    sets: Vec<Vec<u64>>, // each set holds up to `assoc` line tags, MRU last
    assoc: usize,
    hits: u64,
    misses: u64,
}

impl L2Cache {
    /// Builds a cache of `capacity_bytes` with `assoc` ways per set.
    ///
    /// # Panics
    /// Panics if the capacity does not hold at least one full set.
    pub fn new(capacity_bytes: usize, assoc: usize) -> Self {
        let lines = capacity_bytes / LINE_BYTES as usize;
        assert!(assoc > 0 && lines >= assoc, "capacity too small for associativity");
        let num_sets = (lines / assoc).max(1);
        L2Cache { sets: vec![Vec::new(); num_sets], assoc, hits: 0, misses: 0 }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets.len() * self.assoc * LINE_BYTES as usize
    }

    /// Accesses one line; returns `true` on hit. Misses install the line,
    /// evicting the LRU way if the set is full.
    pub fn access_line(&mut self, line: u64) -> bool {
        let set_idx = (line as usize) % self.sets.len();
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let tag = set.remove(pos);
            set.push(tag); // move to MRU
            self.hits += 1;
            true
        } else {
            if set.len() == self.assoc {
                set.remove(0); // evict LRU
            }
            set.push(line);
            self.misses += 1;
            false
        }
    }

    /// Accesses several lines, returning `(hits, misses)`.
    pub fn access_lines(&mut self, lines: &[u64]) -> (u64, u64) {
        let before = (self.hits, self.misses);
        for &l in lines {
            self.access_line(l);
        }
        (self.hits - before.0, self.misses - before.1)
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio over the cache's lifetime (0 when never accessed).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Drops all cached lines and resets statistics.
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = L2Cache::new(4096, 2);
        assert!(!c.access_line(7));
        assert!(c.access_line(7));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        // 2 sets x 2 ways. Lines 0,2,4 map to set 0.
        let mut c = L2Cache::new(4 * LINE_BYTES as usize, 2);
        assert_eq!(c.sets.len(), 2);
        c.access_line(0);
        c.access_line(2);
        c.access_line(0); // 0 becomes MRU, 2 is LRU
        c.access_line(4); // evicts 2
        assert!(c.access_line(0), "0 should still be resident");
        assert!(!c.access_line(2), "2 should have been evicted");
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = L2Cache::new(8 * LINE_BYTES as usize, 4);
        for line in 0..1000 {
            c.access_line(line);
        }
        assert!(c.resident_lines() <= 8);
    }

    #[test]
    fn access_lines_returns_delta() {
        let mut c = L2Cache::new(4096, 4);
        let (h, m) = c.access_lines(&[1, 2, 1, 3, 2]);
        assert_eq!((h, m), (2, 3));
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = L2Cache::new(4096, 4);
        c.access_lines(&[1, 2, 3]);
        c.clear();
        assert_eq!((c.hits(), c.misses(), c.resident_lines()), (0, 0, 0));
        assert!(!c.access_line(1));
    }

    #[test]
    #[should_panic(expected = "capacity too small")]
    fn rejects_degenerate_geometry() {
        let _ = L2Cache::new(64, 4);
    }

    #[test]
    fn streaming_larger_than_cache_never_hits() {
        let lines = 32u64;
        let mut c = L2Cache::new(16 * LINE_BYTES as usize, 4);
        for pass in 0..3 {
            for l in 0..lines {
                let hit = c.access_line(l);
                // A working set 2x the cache with LRU thrashes: no hits even
                // on later passes.
                assert!(!hit, "unexpected hit on pass {pass} line {l}");
            }
        }
    }
}
