//! Memory-coalescing analysis.
//!
//! When the threads of a warp issue a global-memory instruction, the device
//! converts the per-lane addresses into as few aligned memory transactions
//! as possible. Consecutive, aligned addresses coalesce into one 128-byte
//! line transaction; scattered addresses degenerate into one transaction
//! per distinct line touched (Section II of the paper: "if the requested
//! addresses of the warp are sparse or unaligned, several memory
//! transactions are required").

/// Size of one global-memory transaction (an L2 cache line).
pub const LINE_BYTES: u64 = 128;

/// Computes the set of memory transactions a warp instruction generates.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoalescingAnalyzer;

impl CoalescingAnalyzer {
    /// Returns the distinct 128-byte line indices touched by the given
    /// per-lane byte accesses (`(address, size)` pairs), i.e. the memory
    /// transactions the warp instruction costs. The result is sorted and
    /// deduplicated.
    pub fn transactions(&self, accesses: &[(u64, u32)]) -> Vec<u64> {
        let mut lines: Vec<u64> = Vec::with_capacity(accesses.len());
        for &(addr, size) in accesses {
            if size == 0 {
                continue;
            }
            let first = addr / LINE_BYTES;
            let last = (addr + size as u64 - 1) / LINE_BYTES;
            for line in first..=last {
                lines.push(line);
            }
        }
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Number of transactions for the given accesses.
    pub fn transaction_count(&self, accesses: &[(u64, u32)]) -> usize {
        self.transactions(accesses).len()
    }

    /// Coalescing efficiency: useful bytes divided by transferred bytes
    /// (1.0 = perfectly coalesced). Returns 1.0 for an empty access list.
    pub fn efficiency(&self, accesses: &[(u64, u32)]) -> f64 {
        let useful: u64 = accesses.iter().map(|&(_, s)| s as u64).sum();
        if useful == 0 {
            return 1.0;
        }
        let moved = self.transaction_count(accesses) as u64 * LINE_BYTES;
        (useful as f64 / moved as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: CoalescingAnalyzer = CoalescingAnalyzer;

    #[test]
    fn fully_coalesced_warp_is_two_transactions() {
        // 32 lanes loading consecutive f64s from an aligned base: 256 bytes
        // = exactly two 128-byte transactions.
        let accesses: Vec<(u64, u32)> = (0..32).map(|l| (l * 8, 8)).collect();
        assert_eq!(A.transaction_count(&accesses), 2);
        assert!((A.efficiency(&accesses) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn broadcast_is_one_transaction() {
        // All lanes reading the same address (model broadcast) coalesces to
        // a single transaction.
        let accesses: Vec<(u64, u32)> = (0..32).map(|_| (4096, 8)).collect();
        assert_eq!(A.transaction_count(&accesses), 1);
    }

    #[test]
    fn strided_access_degenerates() {
        // Lanes striding by one line each -> one transaction per lane.
        let accesses: Vec<(u64, u32)> = (0..32).map(|l| (l * LINE_BYTES, 8)).collect();
        assert_eq!(A.transaction_count(&accesses), 32);
        assert!(A.efficiency(&accesses) < 0.07);
    }

    #[test]
    fn unaligned_access_spans_extra_line() {
        // One 8-byte access straddling a line boundary costs two lines.
        assert_eq!(A.transaction_count(&[(LINE_BYTES - 4, 8)]), 2);
        // Aligned equivalent costs one.
        assert_eq!(A.transaction_count(&[(LINE_BYTES, 8)]), 1);
    }

    #[test]
    fn zero_size_and_empty_are_free() {
        assert_eq!(A.transaction_count(&[]), 0);
        assert_eq!(A.transaction_count(&[(64, 0)]), 0);
        assert!((A.efficiency(&[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transactions_are_sorted_and_unique() {
        let tx = A.transactions(&[(3 * LINE_BYTES, 8), (0, 8), (3 * LINE_BYTES + 16, 8)]);
        assert_eq!(tx, vec![0, 3]);
    }
}
