//! Functional device kernels with simulated cost.
//!
//! Dense kernels use the analytic roofline (their access patterns are
//! regular and perfectly coalescable, so tracing adds nothing); sparse
//! kernels trace real per-lane addresses because their cost is exactly the
//! data-dependent behaviour the paper studies (divergence from the nnz
//! distribution, non-coalesced gathers through L2).
//!
//! Simulated addresses come from the device's buffer registry
//! ([`GpuDevice::buffer_addr`]): stable across calls (cache reuse is
//! modelled faithfully), distinct across arrays, and — unlike raw host
//! addresses — reproducible across runs.
//!
//! [`GpuExec`] packages the kernels behind the [`Exec`] trait so the models
//! in `sgd-models` run unchanged on the simulated device.

use sgd_linalg::{CsrMatrix, Exec, Matrix, Scalar};

use crate::gpu::GpuDevice;
use crate::warp::LaneAccess;

const F64: u64 = std::mem::size_of::<Scalar>() as u64;
const U32: u64 = std::mem::size_of::<u32>() as u64;

/// `y = A x`, analytic roofline.
pub fn gemv(dev: &mut GpuDevice, a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
    sgd_linalg::Backend::seq().gemv(a, x, y);
    let (r, c) = (a.rows() as f64, a.cols() as f64);
    dev.launch_analytic(2.0 * r * c, 8.0 * (r * c + c + r));
}

/// `y = A^T x`, analytic roofline.
pub fn gemv_t(dev: &mut GpuDevice, a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
    sgd_linalg::Backend::seq().gemv_t(a, x, y);
    let (r, c) = (a.rows() as f64, a.cols() as f64);
    dev.launch_analytic(2.0 * r * c, 8.0 * (r * c + r + c));
}

fn gemm_cost(dev: &mut GpuDevice, n: f64, k: f64, m: f64) {
    dev.launch_analytic(2.0 * n * k * m, 8.0 * (n * k + k * m + n * m));
}

/// `C = A B`, analytic roofline (ideal shared-memory tiling: each operand
/// read once).
pub fn gemm(dev: &mut GpuDevice, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    sgd_linalg::Backend::seq().gemm(a, b, c);
    gemm_cost(dev, a.rows() as f64, a.cols() as f64, b.cols() as f64);
}

/// `C = A B^T`, analytic roofline.
pub fn gemm_nt(dev: &mut GpuDevice, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    sgd_linalg::Backend::seq().gemm_nt(a, b, c);
    gemm_cost(dev, a.rows() as f64, a.cols() as f64, b.rows() as f64);
}

/// `C = A^T B`, analytic roofline.
pub fn gemm_tn(dev: &mut GpuDevice, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    sgd_linalg::Backend::seq().gemm_tn(a, b, c);
    gemm_cost(dev, a.cols() as f64, a.rows() as f64, b.cols() as f64);
}

/// `y += a x`, analytic.
pub fn axpy(dev: &mut GpuDevice, a: Scalar, x: &[Scalar], y: &mut [Scalar]) {
    sgd_linalg::Backend::seq().axpy(a, x, y);
    let n = x.len() as f64;
    dev.launch_analytic(2.0 * n, 24.0 * n);
}

/// `x *= a`, analytic.
pub fn scale(dev: &mut GpuDevice, a: Scalar, x: &mut [Scalar]) {
    sgd_linalg::Backend::seq().scale(a, x);
    let n = x.len() as f64;
    dev.launch_analytic(n, 16.0 * n);
}

/// Dot product with tree reduction, analytic.
pub fn dot(dev: &mut GpuDevice, x: &[Scalar], y: &[Scalar]) -> Scalar {
    let n = x.len() as f64;
    dev.launch_analytic(2.0 * n + n.log2().max(0.0), 16.0 * n);
    sgd_linalg::Backend::seq().dot(x, y)
}

/// Sum with tree reduction, analytic.
pub fn sum(dev: &mut GpuDevice, x: &[Scalar]) -> Scalar {
    let n = x.len() as f64;
    dev.launch_analytic(n + n.log2().max(0.0), 8.0 * n);
    x.iter().sum()
}

/// Element-wise map, analytic; `flops_per_elem` declares the cost of `f`.
pub fn map<F>(dev: &mut GpuDevice, x: &mut [Scalar], flops_per_elem: f64, f: F)
where
    F: Fn(Scalar) -> Scalar,
{
    for v in x.iter_mut() {
        *v = f(*v);
    }
    let n = x.len() as f64;
    dev.launch_analytic(flops_per_elem * n, 16.0 * n);
}

/// Element-wise zip, analytic.
pub fn zip<F>(
    dev: &mut GpuDevice,
    a: &[Scalar],
    b: &[Scalar],
    out: &mut [Scalar],
    flops_per_elem: f64,
    f: F,
) where
    F: Fn(Scalar, Scalar) -> Scalar,
{
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = f(x, y);
    }
    let n = a.len() as f64;
    dev.launch_analytic(flops_per_elem * n, 24.0 * n);
}

/// `y = A x` over CSR, one warp per row (the coalescing-friendly layout
/// ViennaCL uses): lanes stride the row's values/indices contiguously and
/// gather `x[col]` through L2. Cost is traced from real addresses.
pub fn spmv_warp_per_row(dev: &mut GpuDevice, a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
    let w = dev.spec().warp_size;
    let (vals_p, cols_p, x_p, y_p) = (
        dev.buffer_addr(a.values()),
        dev.buffer_addr(a.col_idx()),
        dev.buffer_addr(x),
        dev.buffer_addr(y),
    );
    let mut acc: Vec<LaneAccess> = Vec::with_capacity(w);
    dev.run_kernel(a.rows(), |row, ctx| {
        let r = a.row(row);
        let (lo, hi) = (a.row_ptr()[row], a.row_ptr()[row + 1]);
        let mut chunk = lo;
        while chunk < hi {
            let lanes = (hi - chunk).min(w);
            // Coalesced loads of the row's value and index segments.
            acc.clear();
            acc.extend((0..lanes).map(|l| (vals_p + (chunk + l) as u64 * F64, F64 as u32)));
            ctx.load(&acc);
            acc.clear();
            acc.extend((0..lanes).map(|l| (cols_p + (chunk + l) as u64 * U32, U32 as u32)));
            ctx.load(&acc);
            // Gather x[col]: scattered, the expensive part on sparse data.
            acc.clear();
            acc.extend(
                a.col_idx()[chunk..chunk + lanes]
                    .iter()
                    .map(|&c| (x_p + c as u64 * F64, F64 as u32)),
            );
            ctx.load(&acc);
            ctx.compute(2, lanes); // fma + pointer bump
            chunk += lanes;
        }
        // Intra-warp tree reduction, then one lane stores y[row].
        ctx.compute(5, w.min(r.nnz().max(1)));
        ctx.store(&[(y_p + row as u64 * F64, F64 as u32)]);
        y[row] = r.dot(x);
    });
}

/// `y = A x` over CSR, one thread per row (the naive layout): lane `l` of a
/// warp walks row `32w + l`, so value/index loads are scattered across rows
/// and the warp's trip count is the *maximum* nnz among its 32 rows — the
/// divergence penalty the paper measures on high-variance datasets. Used by
/// the ablation benches.
pub fn spmv_thread_per_row(dev: &mut GpuDevice, a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
    let w = dev.spec().warp_size;
    let n_warps = a.rows().div_ceil(w);
    let (vals_p, cols_p, x_p, y_p) = (
        dev.buffer_addr(a.values()),
        dev.buffer_addr(a.col_idx()),
        dev.buffer_addr(x),
        dev.buffer_addr(y),
    );
    let mut acc: Vec<LaneAccess> = Vec::with_capacity(w);
    dev.run_kernel(n_warps, |warp, ctx| {
        let rows = (warp * w)..((warp * w + w).min(a.rows()));
        let trips: Vec<u64> = rows.clone().map(|r| a.row_nnz(r) as u64).collect();
        let max_trip = trips.iter().copied().max().unwrap_or(0);
        for k in 0..max_trip {
            // Lanes whose row still has a k-th element issue the loads.
            acc.clear();
            for (i, row) in rows.clone().enumerate() {
                if trips[i] > k {
                    let off = (a.row_ptr()[row] as u64 + k) * F64;
                    acc.push((vals_p + off, F64 as u32));
                }
            }
            ctx.load(&acc);
            acc.clear();
            for (i, row) in rows.clone().enumerate() {
                if trips[i] > k {
                    let off = (a.row_ptr()[row] as u64 + k) * U32;
                    acc.push((cols_p + off, U32 as u32));
                }
            }
            ctx.load(&acc);
            acc.clear();
            for (i, row) in rows.clone().enumerate() {
                if trips[i] > k {
                    let col = a.col_idx()[a.row_ptr()[row] + k as usize];
                    acc.push((x_p + col as u64 * F64, F64 as u32));
                }
            }
            ctx.load(&acc);
        }
        ctx.diverged_loop(&trips, 2);
        // Coalesced store of the warp's y segment.
        acc.clear();
        acc.extend(rows.clone().map(|r| (y_p + r as u64 * F64, F64 as u32)));
        ctx.store(&acc);
        for row in rows {
            y[row] = a.row(row).dot(x);
        }
    });
}

/// `y = A^T x` over CSR (the gradient scatter `X^T r`), one warp per row:
/// the row's `x[row]` is broadcast, values/indices stream coalesced, and
/// the updates scatter into `y[col]` with atomic adds.
pub fn spmv_t_warp_per_row(dev: &mut GpuDevice, a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
    let w = dev.spec().warp_size;
    let (vals_p, cols_p, x_p, y_p) = (
        dev.buffer_addr(a.values()),
        dev.buffer_addr(a.col_idx()),
        dev.buffer_addr(x),
        dev.buffer_addr(y),
    );
    y.fill(0.0);
    let mut acc: Vec<LaneAccess> = Vec::with_capacity(w);
    dev.run_kernel(a.rows(), |row, ctx| {
        let xi = x[row];
        ctx.load(&[(x_p + row as u64 * F64, F64 as u32)]);
        let (lo, hi) = (a.row_ptr()[row], a.row_ptr()[row + 1]);
        let mut chunk = lo;
        while chunk < hi {
            let lanes = (hi - chunk).min(w);
            acc.clear();
            acc.extend((0..lanes).map(|l| (vals_p + (chunk + l) as u64 * F64, F64 as u32)));
            ctx.load(&acc);
            acc.clear();
            acc.extend((0..lanes).map(|l| (cols_p + (chunk + l) as u64 * U32, U32 as u32)));
            ctx.load(&acc);
            // Atomic scatter y[col] += v * xi: a read-modify-write, charged
            // as a load plus a store on the scattered addresses.
            acc.clear();
            acc.extend(
                a.col_idx()[chunk..chunk + lanes]
                    .iter()
                    .map(|&c| (y_p + c as u64 * F64, F64 as u32)),
            );
            ctx.load(&acc);
            ctx.store(&acc);
            ctx.compute(2, lanes);
            chunk += lanes;
        }
        if xi != 0.0 {
            a.row(row).axpy_into(xi, y);
        }
    });
}

/// The [`Exec`] implementation for the simulated GPU.
///
/// Dense primitives launch analytic kernels; sparse primitives trace their
/// access pattern (warp-per-row by default, thread-per-row when
/// `thread_per_row` is set — used by the ablation benches).
pub struct GpuExec<'a> {
    /// The device the kernels run on.
    pub dev: &'a mut GpuDevice,
    /// Use the naive thread-per-row sparse layout instead of warp-per-row.
    pub thread_per_row: bool,
}

impl<'a> GpuExec<'a> {
    /// Wraps a device with the default (warp-per-row) sparse layout.
    pub fn new(dev: &'a mut GpuDevice) -> Self {
        GpuExec { dev, thread_per_row: false }
    }
}

impl Exec for GpuExec<'_> {
    fn dot(&mut self, x: &[Scalar], y: &[Scalar]) -> Scalar {
        dot(self.dev, x, y)
    }

    fn axpy(&mut self, a: Scalar, x: &[Scalar], y: &mut [Scalar]) {
        axpy(self.dev, a, x, y)
    }

    fn scale(&mut self, a: Scalar, x: &mut [Scalar]) {
        scale(self.dev, a, x)
    }

    fn sum(&mut self, x: &[Scalar]) -> Scalar {
        sum(self.dev, x)
    }

    fn gemv(&mut self, a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
        gemv(self.dev, a, x, y)
    }

    fn gemv_t(&mut self, a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
        gemv_t(self.dev, a, x, y)
    }

    fn gemm(&mut self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        gemm(self.dev, a, b, c)
    }

    fn gemm_nt(&mut self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        gemm_nt(self.dev, a, b, c)
    }

    fn gemm_tn(&mut self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        gemm_tn(self.dev, a, b, c)
    }

    fn spmv(&mut self, a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
        if self.thread_per_row {
            spmv_thread_per_row(self.dev, a, x, y)
        } else {
            spmv_warp_per_row(self.dev, a, x, y)
        }
    }

    fn spmv_t(&mut self, a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
        spmv_t_warp_per_row(self.dev, a, x, y)
    }

    fn map<F>(&mut self, x: &mut [Scalar], flops_per_elem: f64, f: F)
    where
        F: Fn(Scalar) -> Scalar + Sync + Send,
    {
        map(self.dev, x, flops_per_elem, f)
    }

    fn zip<F>(&mut self, a: &[Scalar], b: &[Scalar], out: &mut [Scalar], flops_per_elem: f64, f: F)
    where
        F: Fn(Scalar, Scalar) -> Scalar + Sync + Send,
    {
        zip(self.dev, a, b, out, flops_per_elem, f)
    }

    fn add_row_bias(&mut self, c: &mut Matrix, b: &[Scalar]) {
        sgd_linalg::CpuExec::seq().add_row_bias(c, b);
        let n = c.len() as f64;
        // Bias vector stays resident; matrix streamed in and out.
        self.dev.launch_analytic(n, 16.0 * n);
    }

    fn col_sums(&mut self, a: &Matrix, out: &mut [Scalar]) {
        sgd_linalg::CpuExec::seq().col_sums(a, out);
        let n = a.len() as f64;
        self.dev.launch_analytic(n + (a.rows() as f64).log2().max(0.0), 8.0 * n);
    }

    fn softmax_xent(&mut self, z: &mut Matrix, classes: &[usize]) -> Scalar {
        let n = z.len() as f64;
        // exp + normalize + delta: ~6 flops per logit, matrix in and out.
        self.dev.launch_analytic(6.0 * n, 16.0 * n);
        sgd_linalg::softmax_xent_reference(z, classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgd_linalg::approx_eq_slice;

    fn skewed_csr() -> (CsrMatrix, Vec<Scalar>) {
        // 64 rows; row 0 has 200 nnz, the rest have 2: high variance like
        // the news dataset.
        let cols = 256;
        let mut rows = Vec::new();
        for r in 0..64usize {
            let nnz = if r == 0 { 200 } else { 2 };
            let entries: Vec<(u32, Scalar)> =
                (0..nnz).map(|k| (((r * 37 + k * 13) % cols) as u32, 1.0 + k as Scalar)).collect();
            let mut dedup: Vec<(u32, Scalar)> = Vec::new();
            for e in entries {
                if !dedup.iter().any(|d| d.0 == e.0) {
                    dedup.push(e);
                }
            }
            rows.push(dedup);
        }
        let m = CsrMatrix::from_row_entries(64, cols, &rows);
        let x: Vec<Scalar> = (0..cols).map(|i| (i % 7) as Scalar * 0.5 - 1.0).collect();
        (m, x)
    }

    #[test]
    fn dense_kernels_match_cpu_reference() {
        let mut dev = GpuDevice::tesla_k80();
        let a = Matrix::from_fn(7, 5, |i, j| (i * 5 + j) as Scalar * 0.25);
        let x: Vec<Scalar> = (0..5).map(|i| i as Scalar - 2.0).collect();
        let mut y_gpu = vec![0.0; 7];
        let mut y_cpu = vec![0.0; 7];
        gemv(&mut dev, &a, &x, &mut y_gpu);
        sgd_linalg::Backend::seq().gemv(&a, &x, &mut y_cpu);
        assert!(approx_eq_slice(&y_gpu, &y_cpu, 1e-12));
        assert_eq!(dev.stats().kernels_launched, 1);
        assert!(dev.elapsed_secs() > 0.0);
    }

    #[test]
    fn sparse_kernels_match_cpu_reference() {
        let (m, x) = skewed_csr();
        let mut expect = vec![0.0; 64];
        sgd_linalg::Backend::seq().spmv(&m, &x, &mut expect);

        let mut dev = GpuDevice::tesla_k80();
        let mut y = vec![0.0; 64];
        spmv_warp_per_row(&mut dev, &m, &x, &mut y);
        assert!(approx_eq_slice(&y, &expect, 1e-12));

        let mut dev = GpuDevice::tesla_k80();
        let mut y = vec![0.0; 64];
        spmv_thread_per_row(&mut dev, &m, &x, &mut y);
        assert!(approx_eq_slice(&y, &expect, 1e-12));
    }

    #[test]
    fn spmv_t_matches_cpu_reference() {
        let (m, _) = skewed_csr();
        let x: Vec<Scalar> = (0..64).map(|i| (i % 3) as Scalar - 1.0).collect();
        let mut expect = vec![0.0; 256];
        sgd_linalg::Backend::seq().spmv_t(&m, &x, &mut expect);
        let mut dev = GpuDevice::tesla_k80();
        let mut y = vec![0.0; 256];
        spmv_t_warp_per_row(&mut dev, &m, &x, &mut y);
        assert!(approx_eq_slice(&y, &expect, 1e-12));
    }

    #[test]
    fn thread_per_row_pays_divergence_on_skewed_rows() {
        let (m, x) = skewed_csr();
        let mut y = vec![0.0; 64];

        let mut dev_w = GpuDevice::tesla_k80();
        spmv_warp_per_row(&mut dev_w, &m, &x, &mut y);

        let mut dev_t = GpuDevice::tesla_k80();
        spmv_thread_per_row(&mut dev_t, &m, &x, &mut y);

        // The naive layout wastes lane-cycles on the 200-nnz outlier row.
        assert!(dev_t.stats().divergent_lane_cycles > dev_w.stats().divergent_lane_cycles);
        assert!(dev_t.stats().simd_efficiency() < 0.5);
    }

    #[test]
    fn gpu_exec_runs_models_primitives() {
        let mut dev = GpuDevice::tesla_k80();
        let mut e = GpuExec::new(&mut dev);
        let a = Matrix::from_fn(4, 3, |i, j| (i + j) as Scalar);
        let b = Matrix::from_fn(3, 4, |i, j| i as Scalar - j as Scalar);
        let mut c = Matrix::zeros(4, 4);
        e.gemm(&a, &b, &mut c);
        let mut expect = Matrix::zeros(4, 4);
        sgd_linalg::Backend::seq().gemm(&a, &b, &mut expect);
        assert!(approx_eq_slice(c.as_slice(), expect.as_slice(), 1e-12));

        let mut v = vec![1.0, 2.0, 3.0];
        e.map(&mut v, 1.0, |x| x * 2.0);
        assert_eq!(v, vec![2.0, 4.0, 6.0]);
        assert!(e.dev.stats().kernels_launched >= 2);
    }

    #[test]
    fn repeated_spmv_warms_l2() {
        let (m, x) = skewed_csr();
        let mut dev = GpuDevice::tesla_k80();
        let mut y = vec![0.0; 64];
        spmv_warp_per_row(&mut dev, &m, &x, &mut y);
        let misses_cold = dev.stats().l2_misses;
        spmv_warp_per_row(&mut dev, &m, &x, &mut y);
        let misses_second = dev.stats().l2_misses - misses_cold;
        // The test matrix fits in 1.5 MB of L2, so the second pass hits.
        assert!(misses_second < misses_cold / 4, "{misses_second} vs {misses_cold}");
    }
}
