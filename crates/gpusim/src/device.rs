//! GPU hardware parameters.

/// Static description of a simulated GPU.
///
/// The defaults come from the paper's Fig. 5 (one GK210 die of a Tesla K80;
/// only one of the two dies is used in the paper's experiments).
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// SIMD width of a warp.
    pub warp_size: usize,
    /// Maximum resident threads per SM (bounds occupancy).
    pub max_threads_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Global-memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Latency of a global-memory transaction that misses L2, in cycles.
    pub dram_latency_cycles: u64,
    /// Latency of a global-memory transaction that hits L2, in cycles.
    pub l2_latency_cycles: u64,
    /// L2 cache capacity in bytes.
    pub l2_bytes: usize,
    /// L2 associativity (ways per set).
    pub l2_assoc: usize,
    /// Fused-multiply-add throughput per core per cycle (counted as 2
    /// FLOPs).
    pub flops_per_core_cycle: f64,
    /// Fixed cost of launching one kernel, in cycles (driver + dispatch).
    pub launch_overhead_cycles: u64,
}

impl DeviceSpec {
    /// One GK210 die of a Tesla K80, the device of the paper (Fig. 5).
    pub fn tesla_k80() -> Self {
        DeviceSpec {
            name: "Tesla K80 (one GK210 die)",
            sm_count: 13,
            cores_per_sm: 192,
            warp_size: 32,
            max_threads_per_sm: 2048,
            clock_ghz: 0.824,
            mem_bandwidth_gbps: 240.0,
            dram_latency_cycles: 400,
            l2_latency_cycles: 40,
            l2_bytes: 1536 * 1024,
            l2_assoc: 16,
            flops_per_core_cycle: 2.0,
            // ~5 µs launch overhead at 0.824 GHz.
            launch_overhead_cycles: 4_000,
        }
    }

    /// A smaller laptop-class device used by sensitivity/ablation benches.
    pub fn small_gpu() -> Self {
        DeviceSpec {
            name: "small reference GPU",
            sm_count: 4,
            cores_per_sm: 128,
            warp_size: 32,
            max_threads_per_sm: 1024,
            clock_ghz: 1.0,
            mem_bandwidth_gbps: 80.0,
            dram_latency_cycles: 350,
            l2_latency_cycles: 35,
            l2_bytes: 512 * 1024,
            l2_assoc: 8,
            flops_per_core_cycle: 2.0,
            launch_overhead_cycles: 3_000,
        }
    }

    /// Returns a copy with fixed per-launch costs scaled by `f` — the
    /// scaled-simulation companion of shrinking the datasets to a fraction
    /// of their published size, so launch overhead keeps the same relative
    /// weight per epoch as at full scale. Bandwidths, latencies and cache
    /// capacity are physical properties and do not scale.
    pub fn scaled(&self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "scale must be in (0, 1]");
        let mut s = self.clone();
        s.launch_overhead_cycles = ((self.launch_overhead_cycles as f64 * f) as u64).max(1);
        s
    }

    /// Total CUDA cores.
    pub fn total_cores(&self) -> usize {
        self.sm_count * self.cores_per_sm
    }

    /// Warp instructions one SM can issue per cycle (6 for the K80's 192
    /// cores / 32-wide warps).
    pub fn warp_issue_per_sm(&self) -> f64 {
        self.cores_per_sm as f64 / self.warp_size as f64
    }

    /// Resident warps per SM at full occupancy.
    pub fn resident_warps_per_sm(&self) -> usize {
        self.max_threads_per_sm / self.warp_size
    }

    /// Peak single-issue FLOPs per second.
    pub fn peak_flops(&self) -> f64 {
        self.total_cores() as f64 * self.flops_per_core_cycle * self.clock_ghz * 1e9
    }

    /// Global-memory bytes deliverable per core cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e9 / (self.clock_ghz * 1e9)
    }

    /// Converts a cycle count into seconds of simulated time.
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k80_matches_paper_fig5() {
        let d = DeviceSpec::tesla_k80();
        assert_eq!(d.sm_count, 13);
        assert_eq!(d.cores_per_sm, 192);
        assert_eq!(d.total_cores(), 2496);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.l2_bytes, 1536 * 1024);
        assert_eq!(d.resident_warps_per_sm(), 64);
    }

    #[test]
    fn derived_quantities() {
        let d = DeviceSpec::tesla_k80();
        assert!((d.warp_issue_per_sm() - 6.0).abs() < 1e-12);
        // ~4.1 TFLOPs single precision for the full issue rate.
        assert!(d.peak_flops() > 4.0e12 && d.peak_flops() < 4.2e12);
        // 240 GB/s at 0.824 GHz is ~291 bytes per cycle.
        assert!((d.bytes_per_cycle() - 240.0 / 0.824).abs() < 1e-9);
    }

    #[test]
    fn scaled_spec_shrinks_fixed_costs_only() {
        let d = DeviceSpec::tesla_k80();
        let s = d.scaled(0.01);
        assert_eq!(s.launch_overhead_cycles, 40);
        assert_eq!(s.mem_bandwidth_gbps, d.mem_bandwidth_gbps);
        assert_eq!(s.l2_bytes, d.l2_bytes);
    }

    #[test]
    fn cycles_to_secs_round_trip() {
        let d = DeviceSpec::tesla_k80();
        let secs = d.cycles_to_secs(0.824e9);
        assert!((secs - 1.0).abs() < 1e-12);
    }
}
