//! Closed-form roofline costs for regular (dense BLAS) kernels.
//!
//! Dense kernels have data-independent, perfectly coalescable access
//! patterns, so tracing every access would add nothing but runtime. The
//! analytic model charges `max(compute, memory)` cycles — the classic
//! roofline — plus launch overhead. Irregular kernels (sparse, Hogwild)
//! use the trace machinery in [`crate::warp`] instead.

use crate::device::DeviceSpec;

/// Roofline cost model for one device.
#[derive(Clone, Debug)]
pub struct CostModel {
    spec: DeviceSpec,
}

impl CostModel {
    /// Builds a cost model for the given device.
    pub fn new(spec: DeviceSpec) -> Self {
        CostModel { spec }
    }

    /// The device this model describes.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Cycles for a kernel performing `flops` floating-point operations and
    /// moving `bytes` through global memory, assuming perfect coalescing
    /// and full occupancy. Includes launch overhead.
    pub fn kernel_cycles(&self, flops: f64, bytes: f64) -> f64 {
        let s = &self.spec;
        let compute = flops / (s.total_cores() as f64 * s.flops_per_core_cycle);
        let memory = bytes / s.bytes_per_cycle();
        s.launch_overhead_cycles as f64 + compute.max(memory)
    }

    /// Seconds for the same kernel.
    pub fn kernel_secs(&self, flops: f64, bytes: f64) -> f64 {
        self.spec.cycles_to_secs(self.kernel_cycles(flops, bytes))
    }

    /// Cycles for a whole *dispatch* of `kernels` launches jointly
    /// performing `flops` floating-point operations over `bytes` of
    /// coalesced traffic: every launch pays the fixed overhead, the work
    /// itself is one roofline term. This is the estimate the batch router
    /// queries — the per-launch overhead is exactly what micro-batching
    /// amortizes.
    pub fn dispatch_cycles(&self, kernels: f64, flops: f64, bytes: f64) -> f64 {
        let s = &self.spec;
        let compute = flops / (s.total_cores() as f64 * s.flops_per_core_cycle);
        let memory = bytes / s.bytes_per_cycle();
        kernels.max(1.0) * s.launch_overhead_cycles as f64 + compute.max(memory)
    }

    /// Seconds for the same dispatch.
    pub fn dispatch_secs(&self, kernels: f64, flops: f64, bytes: f64) -> f64 {
        self.spec.cycles_to_secs(self.dispatch_cycles(kernels, flops, bytes))
    }

    /// Arithmetic intensity (FLOPs per byte) at which the device flips from
    /// memory bound to compute bound.
    pub fn ridge_point(&self) -> f64 {
        let s = &self.spec;
        s.total_cores() as f64 * s.flops_per_core_cycle / s.bytes_per_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_kernel_ignores_flops() {
        let m = CostModel::new(DeviceSpec::tesla_k80());
        // 1 GB moved, trivial compute: time ~ 1/240 s.
        let secs = m.kernel_secs(1e6, 1e9);
        assert!((secs - 1.0 / 240.0).abs() / (1.0 / 240.0) < 0.01);
    }

    #[test]
    fn compute_bound_kernel_ignores_bytes() {
        let m = CostModel::new(DeviceSpec::tesla_k80());
        // 4.1 TFLOP of work, 1 KB moved: time ~ 1 s.
        let flops = m.spec().peak_flops();
        let secs = m.kernel_secs(flops, 1024.0);
        assert!((secs - 1.0).abs() < 0.01);
    }

    #[test]
    fn launch_overhead_floors_empty_kernels() {
        let spec = DeviceSpec::tesla_k80();
        let m = CostModel::new(spec.clone());
        assert_eq!(m.kernel_cycles(0.0, 0.0), spec.launch_overhead_cycles as f64);
    }

    #[test]
    fn dispatch_scales_overhead_with_kernel_count() {
        let m = CostModel::new(DeviceSpec::tesla_k80());
        let one = m.dispatch_cycles(1.0, 1e6, 1e6);
        let three = m.dispatch_cycles(3.0, 1e6, 1e6);
        let overhead = m.spec().launch_overhead_cycles as f64;
        assert!((three - one - 2.0 * overhead).abs() < 1e-9);
        // A zero-kernel dispatch still pays one launch.
        assert_eq!(m.dispatch_cycles(0.0, 0.0, 0.0), overhead);
        // One kernel degenerates to the single-kernel roofline.
        assert_eq!(m.dispatch_cycles(1.0, 2e9, 5e6), m.kernel_cycles(2e9, 5e6));
    }

    #[test]
    fn ridge_point_is_flops_over_bandwidth() {
        let m = CostModel::new(DeviceSpec::tesla_k80());
        // K80: ~4.1 TFLOPs / 240 GB/s ~ 17 FLOP/byte.
        let r = m.ridge_point();
        assert!(r > 15.0 && r < 20.0, "ridge point {r}");
        // A kernel exactly at the ridge point is equally bound by both.
        let c1 = m.kernel_cycles(r * 1e6, 1e6);
        let compute_only = m.kernel_cycles(r * 1e6, 0.0);
        assert!((c1 - compute_only).abs() < 1.0);
    }
}
