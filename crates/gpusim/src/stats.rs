//! Aggregate simulator counters.

/// Counters accumulated over the lifetime of a [`crate::GpuDevice`].
///
/// These are the quantities the paper's analysis reasons about: memory
/// transactions (coalescing), cache behaviour, warp divergence, and model
/// update conflicts inside warps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GpuStats {
    /// Kernels launched on the device.
    pub kernels_launched: u64,
    /// Warp-level instructions issued (compute + memory).
    pub warp_instructions: u64,
    /// Global-memory transactions generated after coalescing.
    pub mem_transactions: u64,
    /// L2 hits among those transactions.
    pub l2_hits: u64,
    /// L2 misses among those transactions.
    pub l2_misses: u64,
    /// Bytes moved between L2/DRAM and the SMs (transactions x 128).
    pub bytes_transferred: u64,
    /// Lane-cycles during which a lane was masked off inside a divergent
    /// loop (the waste caused by variance in per-example work).
    pub divergent_lane_cycles: u64,
    /// Lane-cycles during which a lane did useful work.
    pub active_lane_cycles: u64,
    /// Model updates lost to intra-warp write conflicts (recorded by the
    /// asynchronous SGD kernels).
    pub update_conflicts: u64,
}

impl GpuStats {
    /// L2 hit ratio over all transactions (0 if none).
    pub fn l2_hit_ratio(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// SIMD efficiency: fraction of lane-cycles doing useful work
    /// (1.0 = no divergence; 1.0 when nothing ran).
    pub fn simd_efficiency(&self) -> f64 {
        let total = self.active_lane_cycles + self.divergent_lane_cycles;
        if total == 0 {
            1.0
        } else {
            self.active_lane_cycles as f64 / total as f64
        }
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &GpuStats) {
        self.kernels_launched += other.kernels_launched;
        self.warp_instructions += other.warp_instructions;
        self.mem_transactions += other.mem_transactions;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.bytes_transferred += other.bytes_transferred;
        self.divergent_lane_cycles += other.divergent_lane_cycles;
        self.active_lane_cycles += other.active_lane_cycles;
        self.update_conflicts += other.update_conflicts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero() {
        let s = GpuStats::default();
        assert_eq!(s.l2_hit_ratio(), 0.0);
        assert_eq!(s.simd_efficiency(), 1.0);
    }

    #[test]
    fn ratios_compute() {
        let s = GpuStats {
            l2_hits: 3,
            l2_misses: 1,
            active_lane_cycles: 60,
            divergent_lane_cycles: 40,
            ..Default::default()
        };
        assert!((s.l2_hit_ratio() - 0.75).abs() < 1e-12);
        assert!((s.simd_efficiency() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = GpuStats { kernels_launched: 1, mem_transactions: 10, ..Default::default() };
        let b = GpuStats {
            kernels_launched: 2,
            mem_transactions: 5,
            update_conflicts: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.kernels_launched, 3);
        assert_eq!(a.mem_transactions, 15);
        assert_eq!(a.update_conflicts, 7);
    }
}
