//! A SIMT GPU simulator standing in for the NVIDIA Tesla K80 of the paper.
//!
//! The paper's GPU findings are architectural, not numeric: synchronous SGD
//! wins on GPU because dense BLAS coalesces global-memory traffic and
//! saturates the device's FLOPs; asynchronous (Hogwild) SGD loses on GPU
//! because warp-lockstep execution turns concurrent model updates into
//! intra-warp conflicts (dense data) and irregular per-example work into
//! warp divergence plus non-coalesced model gathers (sparse data). This
//! crate models exactly those mechanisms:
//!
//! * [`DeviceSpec`] — the hardware parameters (K80 preset from the paper's
//!   Fig. 5, plus others for sensitivity studies);
//! * [`CoalescingAnalyzer`] — converts the per-lane addresses of one warp
//!   memory instruction into 128-byte-line memory transactions;
//! * [`L2Cache`] — a set-associative LRU model of the 1.5 MB L2;
//! * [`WarpCtx`] — warp-lockstep execution with an active mask, divergence
//!   accounting, and per-access memory charging;
//! * [`Scheduler`] — SM occupancy and the aggregation of per-warp cycles
//!   into kernel time;
//! * [`CostModel`] — closed-form roofline costs for dense BLAS kernels
//!   whose access patterns are regular enough not to need tracing;
//! * [`kernels`] — functional device kernels (gemv/gemm/spmv/...) that
//!   compute real results while charging simulated cycles;
//! * [`GpuDevice`] — the facade owning the simulated clock.
//!
//! Simulated time accumulates on [`GpuDevice`] and is reported as kernel
//! execution time only, matching the paper's methodology (host↔device
//! transfer time is excluded there too).

mod cache;
mod coalesce;
mod cost;
mod device;
mod gpu;
pub mod kernels;
mod scheduler;
mod stats;
mod warp;

pub use cache::L2Cache;
pub use coalesce::{CoalescingAnalyzer, LINE_BYTES};
pub use cost::CostModel;
pub use device::DeviceSpec;
pub use gpu::GpuDevice;
pub use scheduler::Scheduler;
pub use stats::GpuStats;
pub use warp::{LaneAccess, WarpCtx};
