//! The simulated GPU device: clock, memory system, and launch API.

use crate::cache::L2Cache;
use crate::cost::CostModel;
use crate::device::DeviceSpec;
use crate::scheduler::{KernelAccounting, Scheduler};
use crate::stats::GpuStats;
use crate::warp::WarpCtx;

/// A simulated GPU.
///
/// Owns the device clock (simulated seconds), the shared L2 cache model,
/// and the lifetime statistics. Kernels advance the clock either through
/// the analytic roofline ([`GpuDevice::launch_analytic`]) or by tracing
/// warp execution ([`GpuDevice::run_kernel`]).
pub struct GpuDevice {
    spec: DeviceSpec,
    scheduler: Scheduler,
    cost: CostModel,
    l2: L2Cache,
    stats: GpuStats,
    elapsed_cycles: f64,
    alloc_cursor: u64,
    buffers: std::collections::BTreeMap<(usize, usize), u64>,
    named: std::collections::BTreeMap<String, NamedBuffer>,
    transient: Option<TransientArena>,
}

/// A logical buffer with a stable virtual address, rebindable to a new
/// host allocation without moving on the device.
#[derive(Clone, Debug)]
struct NamedBuffer {
    base: u64,
    capacity: u64,
    host: (usize, usize),
}

/// Per-dispatch scratch arena: virtual addresses depend only on
/// first-touch *order within the dispatch*, never on host pointers.
#[derive(Debug, Default)]
struct TransientArena {
    cursor: u64,
    map: std::collections::BTreeMap<(usize, usize), u64>,
}

/// Base virtual address of the transient scratch arena — far above
/// anything [`GpuDevice::alloc`] hands out, so scratch regions never
/// collide with persistent ones.
const TRANSIENT_BASE: u64 = 1 << 40;

impl GpuDevice {
    /// Builds a device from a spec.
    pub fn new(spec: DeviceSpec) -> Self {
        let l2 = L2Cache::new(spec.l2_bytes, spec.l2_assoc);
        GpuDevice {
            scheduler: Scheduler::new(spec.clone()),
            cost: CostModel::new(spec.clone()),
            l2,
            stats: GpuStats::default(),
            elapsed_cycles: 0.0,
            alloc_cursor: 0,
            buffers: std::collections::BTreeMap::new(),
            named: std::collections::BTreeMap::new(),
            transient: None,
            spec,
        }
    }

    /// The paper's device: one die of a Tesla K80.
    pub fn tesla_k80() -> Self {
        GpuDevice::new(DeviceSpec::tesla_k80())
    }

    /// The device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &GpuStats {
        &self.stats
    }

    /// Simulated kernel time elapsed so far, in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.spec.cycles_to_secs(self.elapsed_cycles)
    }

    /// Simulated cycles elapsed so far.
    pub fn elapsed_cycles(&self) -> f64 {
        self.elapsed_cycles
    }

    /// Resets the clock (statistics and cache contents are kept).
    pub fn reset_clock(&mut self) {
        self.elapsed_cycles = 0.0;
    }

    /// Advances the clock by a pre-computed amount of simulated seconds.
    ///
    /// Used by the study harness to replay the cost of an epoch whose
    /// access pattern was already traced (synchronous SGD touches identical
    /// addresses every epoch, so tracing once is exact).
    pub fn advance_secs(&mut self, secs: f64) {
        assert!(secs >= 0.0, "time cannot run backwards");
        self.elapsed_cycles += secs * self.spec.clock_ghz * 1e9;
    }

    /// Allocates `bytes` of simulated global memory, returning the base
    /// address (256-byte aligned, like `cudaMalloc`).
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.alloc_cursor;
        self.alloc_cursor += (bytes + 255) & !255;
        base
    }

    /// Binds `slice` to the logical buffer `name`, returning its stable
    /// virtual address.
    ///
    /// The address belongs to the *name*, not the host allocation: rebinding
    /// the same name to a fresh host buffer of equal (or smaller) size keeps
    /// the virtual address, so the L2 model sees the same lines — a warm
    /// cache — even though the host allocator moved the data. Growing a
    /// binding reallocates the device region (the old lines go cold, as a
    /// real realloc would). This is the identity serving uses for weights
    /// and batch buffers; training buffers, which live for a whole run, can
    /// keep relying on first-touch identity via [`GpuDevice::buffer_addr`].
    pub fn bind_buffer<T>(&mut self, name: &str, slice: &[T]) -> u64 {
        let len_bytes = std::mem::size_of_val(slice);
        let bytes = len_bytes.max(1) as u64;
        let host = (slice.as_ptr() as usize, len_bytes);
        let reusable = self.named.get(name).filter(|nb| nb.capacity >= bytes);
        let (base, capacity) = match reusable {
            Some(nb) => (nb.base, nb.capacity),
            None => (self.alloc(bytes), bytes),
        };
        self.named.insert(name.to_string(), NamedBuffer { base, capacity, host });
        base
    }

    /// Opens a fresh transient scope: until the next call, unnamed buffers
    /// first touched by kernels draw virtual addresses from a scratch arena
    /// that restarts at a fixed base.
    ///
    /// Dispatch-scoped scratch (an output vector, a densified batch) then
    /// traces the *same* addresses on every dispatch that runs the same
    /// kernel sequence — deterministic cycles, and warm L2 across equally
    /// shaped batches — instead of addresses keyed on whatever the host
    /// allocator returned.
    pub fn begin_transient_scope(&mut self) {
        self.transient = Some(TransientArena { cursor: TRANSIENT_BASE, map: Default::default() });
    }

    /// Stable simulated device address for a host-side buffer.
    ///
    /// Resolution order: a named binding for this exact host buffer
    /// ([`GpuDevice::bind_buffer`]) wins; otherwise an active transient
    /// scope allocates from the scratch arena in first-touch order;
    /// otherwise the first touch [`GpuDevice::alloc`]s a persistent region
    /// and later touches of the same buffer return the same base, so cache
    /// reuse is modelled faithfully. In every mode, bases depend only on
    /// binding names and first-touch *order* — never on host pointer
    /// values — so a deterministic kernel sequence traces identical
    /// simulated addresses (and cycles) on every run, which the host
    /// allocator cannot guarantee.
    pub fn buffer_addr<T>(&mut self, slice: &[T]) -> u64 {
        let len_bytes = std::mem::size_of_val(slice);
        let key = (slice.as_ptr() as usize, len_bytes);
        if let Some(nb) = self.named.values().find(|nb| nb.host == key) {
            return nb.base;
        }
        if let Some(arena) = self.transient.as_mut() {
            if let Some(&base) = arena.map.get(&key) {
                return base;
            }
            let base = arena.cursor;
            arena.cursor += (len_bytes.max(1) as u64 + 255) & !255;
            arena.map.insert(key, base);
            return base;
        }
        if let Some(&base) = self.buffers.get(&key) {
            return base;
        }
        let base = self.alloc(len_bytes.max(1) as u64);
        self.buffers.insert(key, base);
        base
    }

    /// Launches an analytic (roofline) kernel: `flops` floating-point
    /// operations over `bytes` of perfectly coalesced global traffic.
    pub fn launch_analytic(&mut self, flops: f64, bytes: f64) {
        self.elapsed_cycles += self.cost.kernel_cycles(flops, bytes);
        self.stats.kernels_launched += 1;
        self.stats.bytes_transferred += bytes as u64;
    }

    /// Launches a trace-mode kernel of `n_warps` warps. The closure is
    /// invoked once per warp with a fresh [`WarpCtx`] and performs both the
    /// functional work and the cost reporting. Warps run functionally in
    /// order (the simulator is deterministic); their costs are aggregated
    /// by the [`Scheduler`] as if they ran concurrently at full occupancy.
    pub fn run_kernel<F>(&mut self, n_warps: usize, mut f: F)
    where
        F: FnMut(usize, &mut WarpCtx<'_>),
    {
        let mut acc = KernelAccounting::default();
        for w in 0..n_warps {
            let mut ctx = WarpCtx::new(&self.spec, &mut self.l2);
            f(w, &mut ctx);
            let rec = ctx.into_record();
            self.stats.merge(&rec.stats);
            acc.add_warp(&rec);
        }
        self.elapsed_cycles += self.scheduler.kernel_cycles(&acc);
        self.stats.kernels_launched += 1;
    }

    /// Direct access to the cost model (for analytic kernel helpers).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_launch_advances_clock() {
        let mut dev = GpuDevice::tesla_k80();
        assert_eq!(dev.elapsed_secs(), 0.0);
        dev.launch_analytic(0.0, 240e9 / 1000.0); // 1 ms of bandwidth
        assert!(dev.elapsed_secs() > 0.9e-3 && dev.elapsed_secs() < 1.2e-3);
        assert_eq!(dev.stats().kernels_launched, 1);
    }

    #[test]
    fn traced_kernel_advances_clock_and_merges_stats() {
        let mut dev = GpuDevice::tesla_k80();
        dev.run_kernel(4, |w, ctx| {
            ctx.compute(10, 32);
            ctx.load(&[(w as u64 * 4096, 8)]);
        });
        assert_eq!(dev.stats().kernels_launched, 1);
        assert_eq!(dev.stats().mem_transactions, 4);
        assert!(dev.elapsed_cycles() >= dev.spec().launch_overhead_cycles as f64);
    }

    #[test]
    fn l2_persists_across_kernels() {
        let mut dev = GpuDevice::tesla_k80();
        dev.run_kernel(1, |_, ctx| ctx.load(&[(0, 8)]));
        dev.run_kernel(1, |_, ctx| ctx.load(&[(0, 8)]));
        assert_eq!(dev.stats().l2_misses, 1);
        assert_eq!(dev.stats().l2_hits, 1);
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut dev = GpuDevice::tesla_k80();
        let a = dev.alloc(100);
        let b = dev.alloc(1);
        let c = dev.alloc(300);
        assert_eq!(a % 256, 0);
        assert!(b >= a + 100);
        assert!(c > b);
        assert_eq!(b % 256, 0);
        assert_eq!(c % 256, 0);
    }

    #[test]
    fn advance_and_reset_clock() {
        let mut dev = GpuDevice::tesla_k80();
        dev.advance_secs(2.5);
        assert!((dev.elapsed_secs() - 2.5).abs() < 1e-9);
        dev.reset_clock();
        assert_eq!(dev.elapsed_secs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_rejects_negative() {
        GpuDevice::tesla_k80().advance_secs(-1.0);
    }

    #[test]
    fn rebinding_a_name_keeps_the_virtual_address() {
        let mut dev = GpuDevice::tesla_k80();
        let a: Vec<f64> = vec![1.0; 64];
        let base = dev.bind_buffer("w", &a);
        // A different host allocation of the same size: same device base.
        let b: Vec<f64> = vec![2.0; 64];
        assert_eq!(dev.bind_buffer("w", &b), base);
        assert_eq!(dev.buffer_addr(&b), base, "bound host buffer resolves to the name");
        // Shrinking reuses the region; growing reallocates.
        let small: Vec<f64> = vec![0.0; 8];
        assert_eq!(dev.bind_buffer("w", &small), base);
        let big: Vec<f64> = vec![0.0; 128];
        assert_ne!(dev.bind_buffer("w", &big), base);
    }

    #[test]
    fn transient_scope_restarts_the_scratch_arena() {
        let mut dev = GpuDevice::tesla_k80();
        dev.begin_transient_scope();
        let x: Vec<f64> = vec![0.0; 16];
        let y: Vec<f64> = vec![0.0; 16];
        let (bx, by) = (dev.buffer_addr(&x), dev.buffer_addr(&y));
        assert_eq!(bx, TRANSIENT_BASE);
        assert!(by > bx);
        assert_eq!(dev.buffer_addr(&x), bx, "repeat touches are stable inside a scope");
        // Fresh host allocations in a fresh scope retrace the same bases.
        dev.begin_transient_scope();
        let x2: Vec<f64> = vec![1.0; 16];
        let y2: Vec<f64> = vec![1.0; 16];
        assert_eq!(dev.buffer_addr(&x2), bx);
        assert_eq!(dev.buffer_addr(&y2), by);
    }

    #[test]
    fn named_bindings_shadow_the_transient_arena() {
        let mut dev = GpuDevice::tesla_k80();
        let w: Vec<f64> = vec![1.0; 32];
        let base = dev.bind_buffer("w", &w);
        dev.begin_transient_scope();
        assert_eq!(dev.buffer_addr(&w), base, "named identity survives the scope");
        assert!(base < TRANSIENT_BASE);
    }

    #[test]
    fn first_touch_identity_is_untouched_without_a_scope() {
        let mut dev = GpuDevice::tesla_k80();
        let x: Vec<f64> = vec![0.0; 16];
        let a = dev.buffer_addr(&x);
        assert_eq!(dev.buffer_addr(&x), a);
        assert!(a < TRANSIENT_BASE);
    }
}
