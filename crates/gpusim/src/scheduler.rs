//! Aggregation of per-warp accounting into kernel execution time.

use crate::device::DeviceSpec;
use crate::warp::WarpRecord;

/// Folds the records of a kernel's warps into a cycle count.
///
/// The model is a three-way roofline plus a critical path:
///
/// * **issue bound** — total warp compute cycles divided by the machine's
///   aggregate warp issue rate (`sm_count x cores_per_sm / warp_size`);
/// * **bandwidth bound** — total bytes moved divided by bytes per cycle;
/// * **latency bound** — total exposed memory latency divided by the
///   number of resident warps that can hide it (`sm_count x
///   resident_warps_per_sm`);
/// * **critical path** — no kernel finishes before its slowest warp.
///
/// Kernel time is the launch overhead plus the maximum of the four. This
/// deliberately ignores second-order effects (bank conflicts, instruction
/// mix) that do not drive any of the paper's findings.
#[derive(Clone, Debug)]
pub struct Scheduler {
    spec: DeviceSpec,
}

/// Summed accounting over all warps of one kernel.
#[derive(Clone, Debug, Default)]
pub struct KernelAccounting {
    /// Sum of per-warp compute cycles.
    pub total_compute_cycles: u64,
    /// Sum of per-warp exposed memory latency cycles.
    pub total_mem_latency_cycles: u64,
    /// Sum of bytes moved by all warps.
    pub total_bytes: u64,
    /// Slowest single warp.
    pub max_warp_cycles: u64,
    /// Number of warps.
    pub warps: u64,
}

impl KernelAccounting {
    /// Folds one warp's record into the kernel totals.
    pub fn add_warp(&mut self, w: &WarpRecord) {
        self.total_compute_cycles += w.compute_cycles;
        self.total_mem_latency_cycles += w.mem_latency_cycles;
        self.total_bytes += w.bytes;
        self.max_warp_cycles = self.max_warp_cycles.max(w.cycles());
        self.warps += 1;
    }
}

impl Scheduler {
    /// Builds a scheduler for the given device.
    pub fn new(spec: DeviceSpec) -> Self {
        Scheduler { spec }
    }

    /// The device this scheduler models.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Kernel execution cycles for the accumulated warp accounting,
    /// including launch overhead.
    pub fn kernel_cycles(&self, acc: &KernelAccounting) -> f64 {
        let s = &self.spec;
        let issue = acc.total_compute_cycles as f64 / (s.sm_count as f64 * s.warp_issue_per_sm());
        let bandwidth = acc.total_bytes as f64 / s.bytes_per_cycle();
        let hiding = (s.sm_count * s.resident_warps_per_sm()) as f64;
        let latency = acc.total_mem_latency_cycles as f64 / hiding;
        let critical = acc.max_warp_cycles as f64;
        s.launch_overhead_cycles as f64 + issue.max(bandwidth).max(latency).max(critical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::L2Cache;
    use crate::warp::WarpCtx;

    fn record(compute: u64, loads_scattered: usize) -> WarpRecord {
        let spec = DeviceSpec::tesla_k80();
        let mut l2 = L2Cache::new(spec.l2_bytes, spec.l2_assoc);
        let mut w = WarpCtx::new(&spec, &mut l2);
        w.compute(compute, 32);
        for i in 0..loads_scattered {
            let acc: Vec<(u64, u32)> =
                (0..32).map(|l| ((i * 32 + l as usize) as u64 * 4096, 8)).collect();
            w.load(&acc);
        }
        w.into_record()
    }

    #[test]
    fn launch_overhead_is_a_floor() {
        let spec = DeviceSpec::tesla_k80();
        let sched = Scheduler::new(spec.clone());
        let acc = KernelAccounting::default();
        assert_eq!(sched.kernel_cycles(&acc), spec.launch_overhead_cycles as f64);
    }

    #[test]
    fn critical_path_dominates_single_slow_warp() {
        let spec = DeviceSpec::tesla_k80();
        let sched = Scheduler::new(spec.clone());
        let mut acc = KernelAccounting::default();
        acc.add_warp(&record(1_000_000, 0));
        let cycles = sched.kernel_cycles(&acc) - spec.launch_overhead_cycles as f64;
        assert!((cycles - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn many_small_warps_scale_with_issue_rate() {
        let spec = DeviceSpec::tesla_k80();
        let sched = Scheduler::new(spec.clone());
        let mut acc = KernelAccounting::default();
        for _ in 0..10_000 {
            acc.add_warp(&record(100, 0));
        }
        let cycles = sched.kernel_cycles(&acc) - spec.launch_overhead_cycles as f64;
        // 1e6 total compute cycles over 78 warp-issue slots.
        let expect = 1_000_000.0 / (13.0 * 6.0);
        assert!((cycles - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn memory_heavy_kernel_is_bandwidth_or_latency_bound() {
        let spec = DeviceSpec::tesla_k80();
        let sched = Scheduler::new(spec.clone());
        let mut acc = KernelAccounting::default();
        for _ in 0..1000 {
            acc.add_warp(&record(1, 64)); // 64 fully scattered loads each
        }
        let compute_only = acc.total_compute_cycles as f64 / (13.0 * 6.0);
        let cycles = sched.kernel_cycles(&acc) - spec.launch_overhead_cycles as f64;
        assert!(cycles > compute_only * 10.0, "memory cost must dominate");
    }

    #[test]
    fn accounting_accumulates() {
        let mut acc = KernelAccounting::default();
        acc.add_warp(&record(10, 1));
        acc.add_warp(&record(20, 0));
        assert_eq!(acc.warps, 2);
        assert_eq!(acc.total_compute_cycles, 30);
        assert!(acc.max_warp_cycles >= 20);
        assert!(acc.total_bytes > 0);
    }
}
