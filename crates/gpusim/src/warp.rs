//! Warp-lockstep execution context.
//!
//! Trace-mode kernels (those whose cost is data dependent: sparse
//! matrix-vector products and the asynchronous SGD kernels) are written as
//! per-warp Rust code that performs the *functional* work natively and
//! reports its compute and memory behaviour to a [`WarpCtx`]. The context
//! charges cycles the way the hardware would: one issue per warp
//! instruction for all active lanes, coalesced memory transactions through
//! the shared L2, and divergence accounting when lanes have unequal trip
//! counts.

use crate::cache::L2Cache;
use crate::coalesce::{CoalescingAnalyzer, LINE_BYTES};
use crate::device::DeviceSpec;
use crate::stats::GpuStats;

/// One lane's memory access: `(byte address, size in bytes)`. Inactive
/// lanes simply do not contribute an access.
pub type LaneAccess = (u64, u32);

/// Execution context for one warp of a trace-mode kernel.
///
/// Accumulates the warp's compute cycles, memory-latency cycles, and stats;
/// the [`crate::GpuDevice`] aggregates finished warps into kernel time via
/// the [`crate::Scheduler`].
pub struct WarpCtx<'a> {
    spec: &'a DeviceSpec,
    l2: &'a mut L2Cache,
    analyzer: CoalescingAnalyzer,
    compute_cycles: u64,
    mem_latency_cycles: u64,
    bytes: u64,
    stats: GpuStats,
}

impl<'a> WarpCtx<'a> {
    pub(crate) fn new(spec: &'a DeviceSpec, l2: &'a mut L2Cache) -> Self {
        WarpCtx {
            spec,
            l2,
            analyzer: CoalescingAnalyzer,
            compute_cycles: 0,
            mem_latency_cycles: 0,
            bytes: 0,
            stats: GpuStats::default(),
        }
    }

    /// Issues `instructions` warp-wide compute instructions with
    /// `active_lanes` lanes enabled. Divergence (masked-off lanes) is
    /// charged as wasted lane-cycles but still consumes full issue slots —
    /// exactly the SIMT behaviour that penalizes irregular sparse work.
    pub fn compute(&mut self, instructions: u64, active_lanes: usize) {
        let w = self.spec.warp_size;
        debug_assert!(active_lanes <= w);
        self.compute_cycles += instructions;
        self.stats.warp_instructions += instructions;
        self.stats.active_lane_cycles += instructions * active_lanes as u64;
        self.stats.divergent_lane_cycles += instructions * (w - active_lanes) as u64;
    }

    /// Convenience: a loop whose lanes have different trip counts. The warp
    /// executes `max(trips)` iterations of `instr_per_iter` instructions;
    /// lanes that finished early are masked off (divergence).
    pub fn diverged_loop(&mut self, trips: &[u64], instr_per_iter: u64) {
        let Some(&max) = trips.iter().max() else { return };
        let total_iters: u64 = trips.iter().sum();
        let issued = max * instr_per_iter;
        self.compute_cycles += issued;
        self.stats.warp_instructions += issued;
        self.stats.active_lane_cycles += total_iters * instr_per_iter;
        let wasted_lanes = max * self.spec.warp_size as u64
            - total_iters
            - max * (self.spec.warp_size as u64 - trips.len() as u64);
        // Lanes beyond trips.len() never participated in this loop at all;
        // only lanes that started and finished early count as divergence.
        self.stats.divergent_lane_cycles += wasted_lanes * instr_per_iter;
    }

    fn memory_instruction(&mut self, accesses: &[LaneAccess]) {
        let lines = self.analyzer.transactions(accesses);
        if lines.is_empty() {
            return;
        }
        let (hits, misses) = self.l2.access_lines(&lines);
        self.stats.mem_transactions += lines.len() as u64;
        self.stats.l2_hits += hits;
        self.stats.l2_misses += misses;
        self.stats.bytes_transferred += lines.len() as u64 * LINE_BYTES;
        // Only L2 misses consume DRAM bandwidth; hits are served from the
        // cache and cost latency only (hidden across warps by the
        // scheduler).
        self.bytes += misses * LINE_BYTES;
        // The warp stalls for the slowest transaction; subsequent
        // transactions of the same instruction pipeline behind it at one
        // issue each. Latency across *different* warps is hidden by the
        // scheduler, not here.
        let slowest =
            if misses > 0 { self.spec.dram_latency_cycles } else { self.spec.l2_latency_cycles };
        self.mem_latency_cycles += slowest + (lines.len() as u64 - 1);
        self.stats.warp_instructions += 1;
        let active = accesses.len().min(self.spec.warp_size);
        self.stats.active_lane_cycles += active as u64;
        self.stats.divergent_lane_cycles += (self.spec.warp_size - active) as u64;
    }

    /// One warp-wide global load.
    pub fn load(&mut self, accesses: &[LaneAccess]) {
        self.memory_instruction(accesses);
    }

    /// One warp-wide global store.
    pub fn store(&mut self, accesses: &[LaneAccess]) {
        self.memory_instruction(accesses);
    }

    /// Records `lost` model updates destroyed by intra-warp write conflicts
    /// (used by the asynchronous SGD kernels).
    pub fn record_conflicts(&mut self, lost: u64) {
        self.stats.update_conflicts += lost;
    }

    /// Total cycles this warp occupied (compute + exposed memory latency).
    pub fn cycles(&self) -> u64 {
        self.compute_cycles + self.mem_latency_cycles
    }

    pub(crate) fn into_record(self) -> WarpRecord {
        WarpRecord {
            compute_cycles: self.compute_cycles,
            mem_latency_cycles: self.mem_latency_cycles,
            bytes: self.bytes,
            stats: self.stats,
        }
    }
}

/// The accounting result of one finished warp.
#[derive(Clone, Debug, Default)]
pub struct WarpRecord {
    pub(crate) compute_cycles: u64,
    pub(crate) mem_latency_cycles: u64,
    pub(crate) bytes: u64,
    pub(crate) stats: GpuStats,
}

impl WarpRecord {
    /// Cycles this warp occupied end to end.
    pub fn cycles(&self) -> u64 {
        self.compute_cycles + self.mem_latency_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_parts() -> (DeviceSpec, L2Cache) {
        let spec = DeviceSpec::tesla_k80();
        let l2 = L2Cache::new(spec.l2_bytes, spec.l2_assoc);
        (spec, l2)
    }

    #[test]
    fn compute_charges_issue_slots_and_divergence() {
        let (spec, mut l2) = ctx_parts();
        let mut w = WarpCtx::new(&spec, &mut l2);
        w.compute(10, 8);
        assert_eq!(w.cycles(), 10);
        let r = w.into_record();
        assert_eq!(r.stats.active_lane_cycles, 80);
        assert_eq!(r.stats.divergent_lane_cycles, 240);
    }

    #[test]
    fn coalesced_load_is_cheap_scattered_is_not() {
        let (spec, mut l2) = ctx_parts();

        let mut w = WarpCtx::new(&spec, &mut l2);
        let coalesced: Vec<LaneAccess> = (0..32).map(|l| (l * 8, 8)).collect();
        w.load(&coalesced);
        let cheap = w.cycles();
        let r = w.into_record();
        assert_eq!(r.stats.mem_transactions, 2);

        let mut l2b = L2Cache::new(spec.l2_bytes, spec.l2_assoc);
        let mut w = WarpCtx::new(&spec, &mut l2b);
        let scattered: Vec<LaneAccess> = (0..32).map(|l| (l * 4096, 8)).collect();
        w.load(&scattered);
        let costly = w.cycles();
        let r = w.into_record();
        assert_eq!(r.stats.mem_transactions, 32);
        assert!(costly > cheap);
    }

    #[test]
    fn l2_hit_lowers_latency() {
        let (spec, mut l2) = ctx_parts();
        let acc: Vec<LaneAccess> = vec![(0, 8)];
        let miss_cycles = {
            let mut w = WarpCtx::new(&spec, &mut l2);
            w.load(&acc); // cold miss
            w.cycles()
        };
        let mut w = WarpCtx::new(&spec, &mut l2);
        w.load(&acc); // now resident
        let hit_cycles = w.cycles();
        assert_eq!(miss_cycles, spec.dram_latency_cycles);
        assert_eq!(hit_cycles, spec.l2_latency_cycles);
    }

    #[test]
    fn diverged_loop_charges_max_trip() {
        let (spec, mut l2) = ctx_parts();
        let mut w = WarpCtx::new(&spec, &mut l2);
        // 32 lanes, one does 100 iterations, the rest do 1.
        let mut trips = vec![1u64; 32];
        trips[0] = 100;
        w.diverged_loop(&trips, 2);
        assert_eq!(w.cycles(), 200);
        let r = w.into_record();
        // Useful work: 131 lane-iterations of 2 instructions.
        assert_eq!(r.stats.active_lane_cycles, 262);
        // Wasted: 31 lanes x 99 masked iterations x 2 instructions.
        assert_eq!(r.stats.divergent_lane_cycles, 31 * 99 * 2);
    }

    #[test]
    fn diverged_loop_uniform_has_no_waste() {
        let (spec, mut l2) = ctx_parts();
        let mut w = WarpCtx::new(&spec, &mut l2);
        w.diverged_loop(&[5; 32], 3);
        let r = w.into_record();
        assert_eq!(r.stats.divergent_lane_cycles, 0);
        assert_eq!(r.stats.active_lane_cycles, 32 * 5 * 3);
    }

    #[test]
    fn diverged_loop_partial_warp_not_counted_as_divergence() {
        let (spec, mut l2) = ctx_parts();
        let mut w = WarpCtx::new(&spec, &mut l2);
        // Only 8 lanes participate, all with equal trips: the other 24
        // lanes were never part of the loop, so no divergence is recorded.
        w.diverged_loop(&[4; 8], 1);
        let r = w.into_record();
        assert_eq!(r.stats.divergent_lane_cycles, 0);
        assert_eq!(r.stats.active_lane_cycles, 32);
    }

    #[test]
    fn conflicts_recorded() {
        let (spec, mut l2) = ctx_parts();
        let mut w = WarpCtx::new(&spec, &mut l2);
        w.record_conflicts(31);
        assert_eq!(w.into_record().stats.update_conflicts, 31);
    }

    #[test]
    fn empty_loads_are_free() {
        let (spec, mut l2) = ctx_parts();
        let mut w = WarpCtx::new(&spec, &mut l2);
        w.load(&[]);
        assert_eq!(w.cycles(), 0);
    }
}
