//! Bit-identity suite for the persistent-pool kernels.
//!
//! Two guarantees are pinned here, kernel by kernel, across widths 1..=8
//! and deliberately uneven lengths (`MIN_PARALLEL_LEN * 2 + 17` leaves a
//! ragged tail chunk at every width):
//!
//! 1. **par == seq, bitwise.** Kernels whose parallel decomposition
//!    preserves the sequential accumulation order (element-wise and
//!    per-row kernels) match `Backend::seq` exactly on *any* data.
//!    Chunked reductions (`dot`, `sum`, `gemv_t`, `spmv_t`) reassociate
//!    the sum, so they are pinned on integer-valued data, where every
//!    intermediate is exactly representable and reassociation is lossless.
//! 2. **pool == fork-join, bitwise, on any data.** Chunk assignment
//!    depends only on the requested width, never on the dispatch
//!    mechanism, so flipping `Dispatch` can never change a single bit.
//! 3. **The SIMD tier obeys the same discipline.** Every guarantee above
//!    holds at every [`KernelTier`]: integer-data equality is pinned
//!    against the seq/Scalar reference across all tiers (the vector
//!    kernels use fixed-lane accumulators with a pinned reduction tree,
//!    so reassociation is the same lossless story as chunking), and the
//!    AVX2 path is bitwise equal to its portable mirror on *any* data —
//!    runtime feature detection can never change results.

use sgd_linalg::pool::{self, Dispatch};
use sgd_linalg::{Backend, CsrMatrix, KernelTier, Matrix, Scalar, MIN_PARALLEL_LEN};

/// Uneven on purpose: not a multiple of any width in 1..=8.
const N: usize = MIN_PARALLEL_LEN * 2 + 17;

/// Integer-valued scalars: exactly representable, sums stay well inside
/// the 2^53 exact-integer range, so any summation order gives equal bits.
fn int_data(n: usize, seed: usize) -> Vec<Scalar> {
    (0..n).map(|i| ((i * 31 + seed * 7 + 11) % 23) as Scalar - 11.0).collect()
}

/// Fractional scalars whose sums genuinely depend on association order —
/// the data that would expose any chunking mismatch between modes.
fn frac_data(n: usize, seed: usize) -> Vec<Scalar> {
    (0..n).map(|i| ((i * 13 + seed * 5 + 3) % 97) as Scalar * 0.013 - 0.61).collect()
}

fn int_matrix(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| ((i * 17 + j * 5 + seed) % 19) as Scalar - 9.0)
}

fn frac_matrix(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| ((i * 29 + j * 11 + seed) % 83) as Scalar * 0.021 - 0.85)
}

/// Sparse-ish matrix (roughly one nonzero in four).
fn sparse_matrix(rows: usize, cols: usize, frac: bool) -> CsrMatrix {
    let d = Matrix::from_fn(rows, cols, |i, j| {
        if (i * 3 + j) % 4 == 0 {
            let v = ((i * 7 + j * 13) % 21) as Scalar - 10.0;
            if frac {
                v * 0.037
            } else {
                v
            }
        } else {
            0.0
        }
    });
    CsrMatrix::from_dense(&d)
}

const WIDTHS: std::ops::RangeInclusive<usize> = 1..=8;

const TIERS: [KernelTier; 3] = [KernelTier::Scalar, KernelTier::Simd, KernelTier::SimdPortable];

#[test]
fn reduction_kernels_match_seq_bitwise_on_integer_data() {
    let seq = Backend::seq();
    let par = Backend::par();
    let x = int_data(N, 1);
    let y = int_data(N, 2);
    let a = int_matrix(N, 13, 3);
    let s = sparse_matrix(N, 17, false);

    // Ground truth at the default (Scalar) tier; integer data makes every
    // reassociation — chunking *and* fixed-lane SIMD accumulators — exact.
    let expect_dot = seq.dot(&x, &y);
    let expect_sum = seq.sum(&x);
    let mut expect_gemv_t = vec![0.0; 13];
    seq.gemv_t(&a, &x, &mut expect_gemv_t);
    let mut expect_spmv_t = vec![0.0; 17];
    seq.spmv_t(&s, &x, &mut expect_spmv_t);

    for tier in TIERS {
        for w in WIDTHS {
            pool::with_threads(w, || {
                pool::with_tier(tier, || {
                    assert_eq!(par.dot(&x, &y), expect_dot, "dot at width {w} {tier:?}");
                    assert_eq!(par.sum(&x), expect_sum, "sum at width {w} {tier:?}");

                    let mut got = vec![0.0; 13];
                    par.gemv_t(&a, &x, &mut got);
                    assert_eq!(got, expect_gemv_t, "gemv_t at width {w} {tier:?}");

                    let mut got = vec![0.0; 17];
                    par.spmv_t(&s, &x, &mut got);
                    assert_eq!(got, expect_spmv_t, "spmv_t at width {w} {tier:?}");
                });
            });
        }
    }
}

#[test]
fn order_preserving_kernels_match_seq_bitwise_on_any_data() {
    let seq = Backend::seq();
    let par = Backend::par();
    // gemm variants go through par_unconditional to bypass the
    // result-size threshold with matrices small enough to test quickly.
    let par_mm = Backend::par_unconditional();

    let x = frac_data(N, 1);
    let a_tall = frac_matrix(N, 7, 2);
    let xs = frac_data(7, 3);
    let s = sparse_matrix(N, 7, true);

    let a = frac_matrix(61, 9, 4);
    let b = frac_matrix(9, 13, 5);
    let bt = Matrix::from_fn(13, 9, |i, j| b.at(j, i));
    let at = Matrix::from_fn(9, 61, |i, j| a.at(j, i));

    for tier in TIERS {
        // Per-tier sequential ground truth: a tier may legitimately change
        // *reduction* bits on fractional data (gemv/spmv row dots), but
        // within a tier the parallel decomposition must be invisible.
        let (y_axpy, y_scale, y_gemv, y_spmv, c_mm, c_nt, c_tn) = pool::with_tier(tier, || {
            let mut y_axpy = frac_data(N, 6);
            seq.axpy(0.37, &x, &mut y_axpy);
            let mut y_scale = x.clone();
            seq.scale(-1.73, &mut y_scale);
            let mut y_gemv = vec![0.0; N];
            seq.gemv(&a_tall, &xs, &mut y_gemv);
            let mut y_spmv = vec![0.0; N];
            seq.spmv(&s, &xs, &mut y_spmv);
            let mut c_mm = Matrix::zeros(61, 13);
            seq.gemm(&a, &b, &mut c_mm);
            let mut c_nt = Matrix::zeros(61, 13);
            seq.gemm_nt(&a, &bt, &mut c_nt);
            let mut c_tn = Matrix::zeros(61, 13);
            seq.gemm_tn(&at, &b, &mut c_tn);
            (y_axpy, y_scale, y_gemv, y_spmv, c_mm, c_nt, c_tn)
        });

        for w in WIDTHS {
            pool::with_threads(w, || {
                pool::with_tier(tier, || {
                    let mut y = frac_data(N, 6);
                    par.axpy(0.37, &x, &mut y);
                    assert_eq!(y, y_axpy, "axpy at width {w} {tier:?}");

                    let mut y = x.clone();
                    par.scale(-1.73, &mut y);
                    assert_eq!(y, y_scale, "scale at width {w} {tier:?}");

                    let mut y = vec![0.0; N];
                    par.gemv(&a_tall, &xs, &mut y);
                    assert_eq!(y, y_gemv, "gemv at width {w} {tier:?}");

                    let mut y = vec![0.0; N];
                    par.spmv(&s, &xs, &mut y);
                    assert_eq!(y, y_spmv, "spmv at width {w} {tier:?}");

                    let mut c = Matrix::zeros(61, 13);
                    par_mm.gemm(&a, &b, &mut c);
                    assert_eq!(c.as_slice(), c_mm.as_slice(), "gemm at width {w} {tier:?}");

                    let mut c = Matrix::zeros(61, 13);
                    par_mm.gemm_nt(&a, &bt, &mut c);
                    assert_eq!(c.as_slice(), c_nt.as_slice(), "gemm_nt at width {w} {tier:?}");

                    let mut c = Matrix::zeros(61, 13);
                    par_mm.gemm_tn(&at, &b, &mut c);
                    assert_eq!(c.as_slice(), c_tn.as_slice(), "gemm_tn at width {w} {tier:?}");
                });
            });
        }
    }
}

/// Every remainder-tail shape for the 4-lane / 2x-unrolled kernels: the
/// SIMD main loop consumes 8 elements per iteration, so lengths spanning
/// a full `8k .. 8k+8` window plus the tiny degenerate sizes exercise
/// every (vector-iterations, tail-length) combination, including tails
/// 1..lane-width. Integer data pins all three tiers to identical bits.
#[test]
fn simd_tiers_match_scalar_bitwise_on_integer_data_for_every_tail_shape() {
    let seq = Backend::seq();
    let lens: Vec<usize> = (0..=9)
        .chain([15, 16, 17, 31, 32, 33, 63, 64, 65, 96, 97, 98, 99, 100, 101, 102, 103])
        .collect();
    for &n in &lens {
        let x = int_data(n, 1);
        let y = int_data(n, 2);

        let expect_dot = seq.dot(&x, &y);
        let mut expect_axpy = int_data(n, 3);
        seq.axpy(3.0, &x, &mut expect_axpy);
        let mut expect_scale = x.clone();
        seq.scale(-2.0, &mut expect_scale);

        // Row count fixed, column count = n: the tail lives in the dots.
        let a_wide = int_matrix(5, n, 4);
        let xs5 = int_data(5, 5);
        let mut expect_gemv = vec![0.0; 5];
        seq.gemv(&a_wide, &x, &mut expect_gemv);
        let mut expect_gemv_t = vec![0.0; n];
        seq.gemv_t(&a_wide, &xs5, &mut expect_gemv_t);

        let s = sparse_matrix(5, n.max(1), false);
        let sx = int_data(n.max(1), 6);
        let mut expect_spmv = vec![0.0; 5];
        seq.spmv(&s, &sx, &mut expect_spmv);

        for tier in [KernelTier::Simd, KernelTier::SimdPortable] {
            pool::with_tier(tier, || {
                assert_eq!(seq.dot(&x, &y), expect_dot, "dot n={n} {tier:?}");

                let mut got = int_data(n, 3);
                seq.axpy(3.0, &x, &mut got);
                assert_eq!(got, expect_axpy, "axpy n={n} {tier:?}");

                let mut got = x.clone();
                seq.scale(-2.0, &mut got);
                assert_eq!(got, expect_scale, "scale n={n} {tier:?}");

                let mut got = vec![0.0; 5];
                seq.gemv(&a_wide, &x, &mut got);
                assert_eq!(got, expect_gemv, "gemv n={n} {tier:?}");

                let mut got = vec![0.0; n];
                seq.gemv_t(&a_wide, &xs5, &mut got);
                assert_eq!(got, expect_gemv_t, "gemv_t n={n} {tier:?}");

                let mut got = vec![0.0; 5];
                seq.spmv(&s, &sx, &mut got);
                assert_eq!(got, expect_spmv, "spmv n={n} {tier:?}");
            });
        }
    }
}

/// Runs every parallel kernel once on fractional data and returns all
/// outputs concatenated — a single fingerprint for dispatch comparison.
fn kernel_fingerprint() -> Vec<Scalar> {
    let par = Backend::par();
    let par_mm = Backend::par_unconditional();
    let x = frac_data(N, 1);
    let y = frac_data(N, 2);
    let a_tall = frac_matrix(N, 13, 3);
    let xs = frac_data(13, 4);
    let s = sparse_matrix(N, 13, true);
    let a = frac_matrix(61, 9, 5);
    let b = frac_matrix(9, 13, 6);
    let bt = Matrix::from_fn(13, 9, |i, j| b.at(j, i));
    let at = Matrix::from_fn(9, 61, |i, j| a.at(j, i));

    let mut out = vec![par.dot(&x, &y), par.sum(&x)];
    let mut v = y.clone();
    par.axpy(0.91, &x, &mut v);
    out.extend_from_slice(&v);
    let mut v = x.clone();
    par.scale(1.31, &mut v);
    out.extend_from_slice(&v);
    let mut v = vec![0.0; N];
    par.gemv(&a_tall, &xs, &mut v);
    out.extend_from_slice(&v);
    let mut v = vec![0.0; 13];
    par.gemv_t(&a_tall, &x, &mut v);
    out.extend_from_slice(&v);
    let mut v = vec![0.0; N];
    par.spmv(&s, &xs, &mut v);
    out.extend_from_slice(&v);
    let mut v = vec![0.0; 13];
    par.spmv_t(&s, &x, &mut v);
    out.extend_from_slice(&v);
    let mut c = Matrix::zeros(61, 13);
    par_mm.gemm(&a, &b, &mut c);
    out.extend_from_slice(c.as_slice());
    let mut c = Matrix::zeros(61, 13);
    par_mm.gemm_nt(&a, &bt, &mut c);
    out.extend_from_slice(c.as_slice());
    let mut c = Matrix::zeros(61, 13);
    par_mm.gemm_tn(&at, &b, &mut c);
    out.extend_from_slice(c.as_slice());
    out
}

#[test]
fn pool_and_fork_join_dispatch_agree_bitwise_on_any_data() {
    for tier in TIERS {
        for w in WIDTHS {
            pool::with_threads(w, || {
                pool::with_tier(tier, || {
                    let pooled = pool::with_dispatch(Dispatch::Pool, kernel_fingerprint);
                    let forked = pool::with_dispatch(Dispatch::ForkJoin, kernel_fingerprint);
                    assert_eq!(pooled, forked, "dispatch modes diverged at width {w} {tier:?}");
                });
            });
        }
    }
}

/// The AVX2 kernels mirror the portable fixed-lane fallback exactly —
/// same lane count, same unroll, same pinned reduction tree — so forcing
/// either resolution must produce identical bits on fractional data whose
/// sums are order-sensitive. This is what makes runtime feature detection
/// safe: a machine without AVX2 reproduces an AVX2 machine bit-for-bit.
#[test]
fn forced_avx2_and_forced_portable_agree_bitwise_on_any_data() {
    for w in WIDTHS {
        pool::with_threads(w, || {
            let hw = pool::with_tier(KernelTier::Simd, kernel_fingerprint);
            let portable = pool::with_tier(KernelTier::SimdPortable, kernel_fingerprint);
            let b_hw: Vec<u64> = hw.iter().map(|v| v.to_bits()).collect();
            let b_po: Vec<u64> = portable.iter().map(|v| v.to_bits()).collect();
            assert_eq!(b_hw, b_po, "SIMD resolutions diverged at width {w}");
        });
    }
}
