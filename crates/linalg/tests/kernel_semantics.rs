//! Pins the gemm zero-skip contract (see `Backend::gemm` docs).
//!
//! `gemm` and `gemm_tn` treat exact-zero entries of A — either sign —
//! as structural zeros: the matching B row is skipped, so NaN/±inf
//! sitting in B at zero-A positions never propagate, and fully-skipped
//! outputs are `+0.0` bitwise. `gemm_nt` is dot-based and performs no
//! skip. Every test here asserts *bitwise*, across `Backend::seq()`,
//! `par_unconditional()` at widths 1..=8, and all three kernel tiers,
//! so no future vectorized path can quietly diverge on the poison
//! values an IEEE-strict implementation would handle differently.

use sgd_linalg::{pool, Backend, KernelTier, Matrix, Scalar};

/// A quiet NaN with a recognizable payload: multiplying by a finite
/// value and accumulating onto +0.0 preserves the payload on x86/ARM,
/// so bitwise comparison catches any reordering of the poison path.
fn payload_nan() -> Scalar {
    Scalar::from_bits(0x7ff8_0000_dead_beef)
}

const TIERS: [KernelTier; 3] = [KernelTier::Scalar, KernelTier::Simd, KernelTier::SimdPortable];

/// Runs `f` under every backend × width × tier combination and asserts
/// the produced C is bitwise identical to the seq/Scalar reference.
fn assert_bitwise_stable(
    label: &str,
    gemm: impl Fn(&Backend, &mut Matrix),
    rows: usize,
    cols: usize,
) {
    let mut reference = Matrix::zeros(rows, cols);
    gemm(&Backend::seq(), &mut reference);
    for tier in TIERS {
        let mut c = Matrix::zeros(rows, cols);
        pool::with_tier(tier, || gemm(&Backend::seq(), &mut c));
        assert_bits_eq(label, &reference, &c, format!("seq {tier:?}"));
        for width in 1..=8 {
            let mut c = Matrix::zeros(rows, cols);
            pool::with_threads(width, || {
                pool::with_tier(tier, || gemm(&Backend::par_unconditional(), &mut c))
            });
            assert_bits_eq(label, &reference, &c, format!("par w={width} {tier:?}"));
        }
    }
}

fn assert_bits_eq(label: &str, expect: &Matrix, got: &Matrix, combo: String) {
    for (i, (e, g)) in expect.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert_eq!(
            e.to_bits(),
            g.to_bits(),
            "{label}: element {i} diverges under {combo}: {e:?} vs {g:?}"
        );
    }
}

#[test]
fn zero_a_entries_suppress_nan_and_inf_from_b() {
    // Both zero signs in A; B rows are pure poison. The skip means C is
    // exactly +0.0 — strict IEEE would give NaN everywhere.
    let a = Matrix::from_rows(&[&[0.0, -0.0]]);
    let b = Matrix::from_rows(&[
        &[payload_nan(), Scalar::INFINITY],
        &[Scalar::NEG_INFINITY, payload_nan()],
    ]);
    let mut c = Matrix::zeros(1, 2);
    Backend::seq().gemm(&a, &b, &mut c);
    for (j, v) in c.as_slice().iter().enumerate() {
        assert_eq!(v.to_bits(), 0.0f64.to_bits(), "C[0][{j}] must be +0.0, got {v:?}");
    }
    assert_bitwise_stable("poison suppression", |be, c| be.gemm(&a, &b, c), 1, 2);
}

#[test]
fn skipped_outputs_are_positive_zero_even_when_ieee_would_give_negative_zero() {
    // Strict IEEE: 0.0 * -1.0 = -0.0; +0.0 + -0.0 = +0.0 but a -0.0-
    // initialized accumulator or a product-only formulation could leak
    // the sign. The pinned contract is stronger and simpler: a fully
    // skipped output is +0.0 bitwise, always.
    let a = Matrix::from_rows(&[&[0.0, -0.0]]);
    let b = Matrix::from_rows(&[&[-1.0, -2.0], &[-3.0, -4.0]]);
    let mut c = Matrix::from_rows(&[&[-5.0, -6.0]]); // stale content must be overwritten
    Backend::seq().gemm(&a, &b, &mut c);
    for v in c.as_slice() {
        assert_eq!(v.to_bits(), 0.0f64.to_bits(), "skipped output must be +0.0, got {v:?}");
    }
    assert_bitwise_stable("negative-zero pinning", |be, c| be.gemm(&a, &b, c), 1, 2);
}

#[test]
fn nonzero_a_entries_propagate_nan_payloads_and_infinities() {
    let nan = payload_nan();
    let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
    let b = Matrix::from_rows(&[&[nan, Scalar::INFINITY], &[3.0, Scalar::NEG_INFINITY]]);
    let mut c = Matrix::zeros(2, 2);
    Backend::seq().gemm(&a, &b, &mut c);
    // Row 0 reads only B row 0: payload NaN and +inf come through.
    assert_eq!(c.at(0, 0).to_bits(), (0.0 + 1.0 * nan).to_bits(), "payload must survive");
    assert_eq!(c.at(0, 1), Scalar::INFINITY);
    // Row 1 reads only B row 1: scaled finite and -inf.
    assert_eq!(c.at(1, 0), 6.0);
    assert_eq!(c.at(1, 1), Scalar::NEG_INFINITY);
    assert_bitwise_stable("poison propagation", |be, c| be.gemm(&a, &b, c), 2, 2);
}

#[test]
fn gemm_tn_shares_the_zero_skip_contract() {
    // Column 0 of A is all zeros (both signs) and column 1 is zero at the
    // poison row of B -> no output ever touches the poison, bitwise.
    let a = Matrix::from_rows(&[&[0.0, 0.0], &[-0.0, 2.0]]);
    let b = Matrix::from_rows(&[&[payload_nan(), Scalar::INFINITY], &[5.0, 7.0]]);
    let mut c = Matrix::zeros(2, 2);
    Backend::seq().gemm_tn(&a, &b, &mut c);
    assert_eq!(c.at(0, 0).to_bits(), 0.0f64.to_bits());
    assert_eq!(c.at(0, 1).to_bits(), 0.0f64.to_bits());
    assert_eq!(c.at(1, 0), 10.0);
    assert_eq!(c.at(1, 1), 14.0);
    assert_bitwise_stable("gemm_tn skip", |be, c| be.gemm_tn(&a, &b, c), 2, 2);
}

#[test]
fn gemm_nt_performs_no_skip_and_propagates_poison() {
    // The documented asymmetry: the dot-based formulation multiplies
    // 0 * NaN and gets NaN, exactly as strict IEEE dictates.
    let a = Matrix::from_rows(&[&[0.0]]);
    let b = Matrix::from_rows(&[&[payload_nan()]]); // b is 1x1; gemm_nt reads its rows
    let mut c = Matrix::zeros(1, 1);
    Backend::seq().gemm_nt(&a, &b, &mut c);
    assert!(c.at(0, 0).is_nan(), "gemm_nt must not skip: got {:?}", c.at(0, 0));
    assert_bitwise_stable("gemm_nt no-skip", |be, c| be.gemm_nt(&a, &b, c), 1, 1);
}

#[test]
fn gemm_nt_inner_dot_is_tier_routed_as_a_reduction() {
    // The no-skip contract is what *permits* tier-routing gemm_nt's inner
    // dot: with every product formed, the only tier-visible effect is
    // reduction order. Pinned consequences, mirroring the dot/gemv/spmv
    // reduction class:
    //
    // * integer-valued data: all three tiers bitwise equal (the
    //   reassociated sums are exact);
    // * any data: Simd == SimdPortable bitwise (identical op order);
    // * poison: NaN propagates in every tier (no skip anywhere).
    let a = Matrix::from_fn(13, 19, |i, j| ((i * 19 + j) % 7) as Scalar - 3.0);
    let bt = Matrix::from_fn(11, 19, |i, j| ((i * 23 + j * 5) % 9) as Scalar - 4.0);
    assert_bitwise_stable("gemm_nt integer reduction", |be, c| be.gemm_nt(&a, &bt, c), 13, 11);

    // Fractional data: scalar-vs-simd bits may differ (reduction order),
    // but the two vector implementations must agree bitwise.
    let af = Matrix::from_fn(13, 19, |i, j| ((i * 19 + j) % 101) as Scalar * 0.013 - 0.5);
    let btf = Matrix::from_fn(11, 19, |i, j| ((i * 23 + j * 5) % 97) as Scalar * 0.017 - 0.6);
    let mut simd_c = Matrix::zeros(13, 11);
    pool::with_tier(KernelTier::Simd, || Backend::seq().gemm_nt(&af, &btf, &mut simd_c));
    let mut port_c = Matrix::zeros(13, 11);
    pool::with_tier(KernelTier::SimdPortable, || Backend::seq().gemm_nt(&af, &btf, &mut port_c));
    assert_bits_eq("gemm_nt fractional", &simd_c, &port_c, "Simd vs SimdPortable".into());

    // No-skip NaN propagation holds in the vector tiers too: a zero A row
    // against a poison B row still multiplies through.
    let az = Matrix::from_fn(1, 19, |_, _| 0.0);
    let bp = Matrix::from_fn(1, 19, |_, j| if j == 7 { payload_nan() } else { 1.0 });
    for tier in TIERS {
        let mut c = Matrix::zeros(1, 1);
        pool::with_tier(tier, || Backend::seq().gemm_nt(&az, &bp, &mut c));
        assert!(c.at(0, 0).is_nan(), "{tier:?}: gemm_nt must not skip, got {:?}", c.at(0, 0));
    }
}

#[test]
fn poisoned_gemm_is_stable_above_the_parallel_floor() {
    // Big enough (64 * 8 * 9 = 4608 element-ops, C.len() = 576 with
    // threshold 0) that par_unconditional genuinely chunks across the
    // pool, with poison and both zero signs scattered through A and B.
    //
    // Outputs here combine *several* NaN/invalid contributions, and IEEE
    // leaves which payload survives a two-NaN (or inf - inf) operation
    // unspecified — hardware picks by operand order, which differs
    // between scalar and vector instruction selection. So this test pins
    // bitwise equality for every non-NaN output and NaN-ness (not the
    // payload) for NaN outputs; the single-NaN payload pin lives in
    // `nonzero_a_entries_propagate_nan_payloads_and_infinities`.
    let nan = payload_nan();
    let a = Matrix::from_fn(64, 8, |i, j| match (i * 8 + j) % 7 {
        0 => 0.0,
        1 => -0.0,
        k => (k as Scalar) - 3.0,
    });
    let b = Matrix::from_fn(8, 9, |i, j| match (i * 9 + j) % 11 {
        0 => nan,
        1 => Scalar::INFINITY,
        2 => Scalar::NEG_INFINITY,
        3 => -0.0,
        k => (k as Scalar) * 0.25 - 1.0,
    });
    let mut reference = Matrix::zeros(64, 9);
    Backend::seq().gemm(&a, &b, &mut reference);
    assert!(reference.as_slice().iter().any(|v| v.is_nan()), "poison must reach some outputs");
    for tier in TIERS {
        for width in 1..=8 {
            let mut c = Matrix::zeros(64, 9);
            pool::with_threads(width, || {
                pool::with_tier(tier, || Backend::par_unconditional().gemm(&a, &b, &mut c))
            });
            for (i, (e, g)) in reference.as_slice().iter().zip(c.as_slice()).enumerate() {
                if e.is_nan() {
                    assert!(g.is_nan(), "element {i}: NaN-ness lost under w={width} {tier:?}");
                } else {
                    assert_eq!(
                        e.to_bits(),
                        g.to_bits(),
                        "element {i} diverges under w={width} {tier:?}: {e:?} vs {g:?}"
                    );
                }
            }
        }
    }
}
