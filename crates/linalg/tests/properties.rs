//! Property-based tests: the parallel backend must agree with the
//! sequential reference on arbitrary inputs, and CSR must round-trip.

use proptest::prelude::*;
use sgd_linalg::{approx_eq_slice, Backend, CsrMatrix, Matrix, Scalar};

fn small_scalar() -> impl Strategy<Value = Scalar> {
    // Bounded values keep reduction-reordering error within tolerance.
    (-100i32..=100).prop_map(|v| v as Scalar / 8.0)
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(small_scalar(), rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn sparse_matrix(rows: usize, cols: usize) -> impl Strategy<Value = CsrMatrix> {
    prop::collection::vec(
        prop_oneof![3 => Just(0.0), 1 => small_scalar()],
        rows * cols,
    )
    .prop_map(move |data| CsrMatrix::from_dense(&Matrix::from_vec(rows, cols, data)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_gemv_matches_seq(a in matrix(17, 9), x in prop::collection::vec(small_scalar(), 9)) {
        let mut ys = vec![0.0; 17];
        let mut yp = vec![0.0; 17];
        Backend::seq().gemv(&a, &x, &mut ys);
        Backend::par().gemv(&a, &x, &mut yp);
        prop_assert!(approx_eq_slice(&ys, &yp, 1e-9));
    }

    #[test]
    fn par_gemv_t_matches_seq(a in matrix(23, 7), x in prop::collection::vec(small_scalar(), 23)) {
        let mut ys = vec![0.0; 7];
        let mut yp = vec![0.0; 7];
        Backend::seq().gemv_t(&a, &x, &mut ys);
        Backend::par().gemv_t(&a, &x, &mut yp);
        prop_assert!(approx_eq_slice(&ys, &yp, 1e-9));
    }

    #[test]
    fn par_gemm_matches_seq(a in matrix(6, 5), b in matrix(5, 8)) {
        let mut cs = Matrix::zeros(6, 8);
        let mut cp = Matrix::zeros(6, 8);
        Backend::seq().gemm(&a, &b, &mut cs);
        Backend::par_unconditional().gemm(&a, &b, &mut cp);
        prop_assert!(approx_eq_slice(cs.as_slice(), cp.as_slice(), 1e-9));
    }

    #[test]
    fn gemm_associates_with_gemv(a in matrix(4, 6), b in matrix(6, 3), x in prop::collection::vec(small_scalar(), 3)) {
        // (A B) x == A (B x)
        let be = Backend::seq();
        let mut ab = Matrix::zeros(4, 3);
        be.gemm(&a, &b, &mut ab);
        let mut lhs = vec![0.0; 4];
        be.gemv(&ab, &x, &mut lhs);
        let mut bx = vec![0.0; 6];
        be.gemv(&b, &x, &mut bx);
        let mut rhs = vec![0.0; 4];
        be.gemv(&a, &bx, &mut rhs);
        prop_assert!(approx_eq_slice(&lhs, &rhs, 1e-8));
    }

    #[test]
    fn csr_round_trips_through_dense(s in sparse_matrix(13, 11)) {
        let back = CsrMatrix::from_dense(&s.to_dense());
        prop_assert_eq!(back, s);
    }

    #[test]
    fn csr_validate_accepts_generated(s in sparse_matrix(9, 9)) {
        s.validate(); // must not panic
        prop_assert!(s.nnz() <= 81);
    }

    #[test]
    fn spmv_matches_dense_path(s in sparse_matrix(15, 10), x in prop::collection::vec(small_scalar(), 10)) {
        let d = s.to_dense();
        for be in [Backend::seq(), Backend::par()] {
            let mut ys = vec![0.0; 15];
            let mut yd = vec![0.0; 15];
            be.spmv(&s, &x, &mut ys);
            be.gemv(&d, &x, &mut yd);
            prop_assert!(approx_eq_slice(&ys, &yd, 1e-9));
        }
    }

    #[test]
    fn spmv_t_matches_dense_path(s in sparse_matrix(12, 14), x in prop::collection::vec(small_scalar(), 12)) {
        let d = s.to_dense();
        for be in [Backend::seq(), Backend::par()] {
            let mut ys = vec![0.0; 14];
            let mut yd = vec![0.0; 14];
            be.spmv_t(&s, &x, &mut ys);
            be.gemv_t(&d, &x, &mut yd);
            prop_assert!(approx_eq_slice(&ys, &yd, 1e-9));
        }
    }

    #[test]
    fn dot_is_symmetric_and_linear(x in prop::collection::vec(small_scalar(), 50),
                                   y in prop::collection::vec(small_scalar(), 50),
                                   a in small_scalar()) {
        let be = Backend::seq();
        prop_assert!((be.dot(&x, &y) - be.dot(&y, &x)).abs() < 1e-9);
        let mut ax = x.clone();
        be.scale(a, &mut ax);
        prop_assert!((be.dot(&ax, &y) - a * be.dot(&x, &y)).abs() < 1e-6);
    }

    #[test]
    fn axpy_then_subtract_is_identity(x in prop::collection::vec(small_scalar(), 40),
                                      y in prop::collection::vec(small_scalar(), 40),
                                      a in small_scalar()) {
        let be = Backend::par();
        let mut z = y.clone();
        be.axpy(a, &x, &mut z);
        be.axpy(-a, &x, &mut z);
        prop_assert!(approx_eq_slice(&z, &y, 1e-9));
    }

    #[test]
    fn nnz_stats_bound_density(s in sparse_matrix(10, 10)) {
        let (min, avg, max) = s.nnz_per_row_stats();
        prop_assert!(min as f64 <= avg + 1e-12);
        prop_assert!(avg <= max as f64 + 1e-12);
        prop_assert!(s.density() <= 1.0);
    }
}
