//! Randomized property tests: the parallel backend must agree with the
//! sequential reference on arbitrary inputs, and CSR must round-trip.
//!
//! Each property is checked over `CASES` seeded random inputs (the
//! offline-build replacement for the original proptest suite — the
//! sampling is deterministic, so failures reproduce exactly).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sgd_linalg::{approx_eq_slice, Backend, CsrMatrix, Matrix, Scalar};

const CASES: u64 = 64;

/// Bounded values keep reduction-reordering error within tolerance.
fn small_scalar(rng: &mut StdRng) -> Scalar {
    rng.gen_range(0u32..201) as Scalar / 8.0 - 12.5
}

fn vector(rng: &mut StdRng, len: usize) -> Vec<Scalar> {
    (0..len).map(|_| small_scalar(rng)).collect()
}

fn matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, vector(rng, rows * cols))
}

/// ~25% dense, like the original `prop_oneof![3 => 0.0, 1 => value]`.
fn sparse_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> CsrMatrix {
    let data: Vec<Scalar> = (0..rows * cols)
        .map(|_| if rng.gen_range(0u32..4) == 0 { small_scalar(rng) } else { 0.0 })
        .collect();
    CsrMatrix::from_dense(&Matrix::from_vec(rows, cols, data))
}

/// Runs `f` once per case with a per-case deterministic generator.
fn for_cases(salt: u64, mut f: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(salt.wrapping_mul(0x9E37_79B9).wrapping_add(case));
        f(&mut rng);
    }
}

#[test]
fn par_gemv_matches_seq() {
    for_cases(1, |rng| {
        let a = matrix(rng, 17, 9);
        let x = vector(rng, 9);
        let mut ys = vec![0.0; 17];
        let mut yp = vec![0.0; 17];
        Backend::seq().gemv(&a, &x, &mut ys);
        Backend::par().gemv(&a, &x, &mut yp);
        assert!(approx_eq_slice(&ys, &yp, 1e-9));
    });
}

#[test]
fn par_gemv_t_matches_seq() {
    for_cases(2, |rng| {
        let a = matrix(rng, 23, 7);
        let x = vector(rng, 23);
        let mut ys = vec![0.0; 7];
        let mut yp = vec![0.0; 7];
        Backend::seq().gemv_t(&a, &x, &mut ys);
        Backend::par().gemv_t(&a, &x, &mut yp);
        assert!(approx_eq_slice(&ys, &yp, 1e-9));
    });
}

#[test]
fn par_gemm_matches_seq() {
    for_cases(3, |rng| {
        let a = matrix(rng, 6, 5);
        let b = matrix(rng, 5, 8);
        let mut cs = Matrix::zeros(6, 8);
        let mut cp = Matrix::zeros(6, 8);
        Backend::seq().gemm(&a, &b, &mut cs);
        Backend::par_unconditional().gemm(&a, &b, &mut cp);
        assert!(approx_eq_slice(cs.as_slice(), cp.as_slice(), 1e-9));
    });
}

#[test]
fn gemm_associates_with_gemv() {
    for_cases(4, |rng| {
        // (A B) x == A (B x)
        let a = matrix(rng, 4, 6);
        let b = matrix(rng, 6, 3);
        let x = vector(rng, 3);
        let be = Backend::seq();
        let mut ab = Matrix::zeros(4, 3);
        be.gemm(&a, &b, &mut ab);
        let mut lhs = vec![0.0; 4];
        be.gemv(&ab, &x, &mut lhs);
        let mut bx = vec![0.0; 6];
        be.gemv(&b, &x, &mut bx);
        let mut rhs = vec![0.0; 4];
        be.gemv(&a, &bx, &mut rhs);
        assert!(approx_eq_slice(&lhs, &rhs, 1e-8));
    });
}

#[test]
fn csr_round_trips_through_dense() {
    for_cases(5, |rng| {
        let s = sparse_matrix(rng, 13, 11);
        let back = CsrMatrix::from_dense(&s.to_dense());
        assert_eq!(back, s);
    });
}

#[test]
fn csr_validate_accepts_generated() {
    for_cases(6, |rng| {
        let s = sparse_matrix(rng, 9, 9);
        s.validate(); // must not panic
        assert!(s.nnz() <= 81);
    });
}

#[test]
fn spmv_matches_dense_path() {
    for_cases(7, |rng| {
        let s = sparse_matrix(rng, 15, 10);
        let x = vector(rng, 10);
        let d = s.to_dense();
        for be in [Backend::seq(), Backend::par()] {
            let mut ys = vec![0.0; 15];
            let mut yd = vec![0.0; 15];
            be.spmv(&s, &x, &mut ys);
            be.gemv(&d, &x, &mut yd);
            assert!(approx_eq_slice(&ys, &yd, 1e-9));
        }
    });
}

#[test]
fn spmv_t_matches_dense_path() {
    for_cases(8, |rng| {
        let s = sparse_matrix(rng, 12, 14);
        let x = vector(rng, 12);
        let d = s.to_dense();
        for be in [Backend::seq(), Backend::par()] {
            let mut ys = vec![0.0; 14];
            let mut yd = vec![0.0; 14];
            be.spmv_t(&s, &x, &mut ys);
            be.gemv_t(&d, &x, &mut yd);
            assert!(approx_eq_slice(&ys, &yd, 1e-9));
        }
    });
}

#[test]
fn dot_is_symmetric_and_linear() {
    for_cases(9, |rng| {
        let x = vector(rng, 50);
        let y = vector(rng, 50);
        let a = small_scalar(rng);
        let be = Backend::seq();
        assert!((be.dot(&x, &y) - be.dot(&y, &x)).abs() < 1e-9);
        let mut ax = x.clone();
        be.scale(a, &mut ax);
        assert!((be.dot(&ax, &y) - a * be.dot(&x, &y)).abs() < 1e-6);
    });
}

#[test]
fn axpy_then_subtract_is_identity() {
    for_cases(10, |rng| {
        let x = vector(rng, 40);
        let y = vector(rng, 40);
        let a = small_scalar(rng);
        let be = Backend::par();
        let mut z = y.clone();
        be.axpy(a, &x, &mut z);
        be.axpy(-a, &x, &mut z);
        assert!(approx_eq_slice(&z, &y, 1e-9));
    });
}

#[test]
fn nnz_stats_bound_density() {
    for_cases(11, |rng| {
        let s = sparse_matrix(rng, 10, 10);
        let (min, avg, max) = s.nnz_per_row_stats();
        assert!(min as f64 <= avg + 1e-12);
        assert!(avg <= max as f64 + 1e-12);
        assert!(s.density() <= 1.0);
    });
}
