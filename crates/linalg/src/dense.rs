//! Row-major dense matrix.

use crate::Scalar;

/// A row-major dense matrix of [`Scalar`]s.
///
/// Rows are contiguous, which matches the access pattern of example-at-a-time
/// SGD (each training example is one row) and lets `row(i)` hand out a slice
/// with no copying.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Scalar>,
}

impl Matrix {
    /// An `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from an explicit row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Scalar>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a slice of equally long rows.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[Scalar]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Scalar) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of entries (`rows * cols`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry at `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> Scalar {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Mutable entry at `(i, j)`.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut Scalar {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Scalar] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [Scalar] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole row-major buffer.
    pub fn as_slice(&self) -> &[Scalar] {
        &self.data
    }

    /// The whole row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [Scalar] {
        &mut self.data
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl ExactSizeIterator<Item = &[Scalar]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// The transpose as a new matrix.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                *t.at_mut(j, i) = self.at(i, j);
            }
        }
        t
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// A sub-matrix consisting of rows `lo..hi` (shares no storage).
    pub fn row_range(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.rows);
        Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols(), m.len()), (2, 3, 6));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.at(0, 1), 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as Scalar);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as Scalar);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().at(4, 2), m.at(2, 4));
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.at(1, 0), 7.0);
    }

    #[test]
    fn rows_iter_yields_all_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let rows: Vec<&[Scalar]> = m.rows_iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[5.0, 6.0]);
    }

    #[test]
    fn row_range_extracts_slice_of_rows() {
        let m = Matrix::from_fn(4, 2, |i, _| i as Scalar);
        let sub = m.row_range(1, 3);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.row(0), &[1.0, 1.0]);
        assert_eq!(sub.row(1), &[2.0, 2.0]);
    }

    #[test]
    fn empty_matrix_is_empty() {
        let m = Matrix::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.rows_iter().count(), 0);
    }
}
