//! Cache-blocked operand layouts for the bandwidth-bound kernels.
//!
//! The paper's CPU-vs-GPU crossover is decided by how close each side
//! runs to its memory-bandwidth roofline, and for `gemv`/`spmv` the
//! limiting stream is the dense `x` vector: a row-major sweep touches
//! all of `x` per row, so once `x` outgrows a cache level every row
//! pays DRAM latency for it. Both layouts here partition *columns* into
//! blocks sized so one block of `x` stays cache-resident across the
//! whole row sweep, trading one extra pass over `y` per block for
//! cache-resident gathers.
//!
//! ## Block sizes vs the cpusim cache tiers
//!
//! `sgd-cpusim`'s `CpuSpec` models 32 KiB L1d and 256 KiB L2 per core,
//! and its `cache_fit_multiplier` grants the 8x/4x bandwidth tiers to
//! working sets that *fit* those levels. The defaults here target half
//! a level (the other half holds the operand rows streaming by):
//!
//! * [`L1_BLOCK_ELEMS`] = 2048 f64 = 16 KiB — half of L1d; default for
//!   dense [`SoaMatrix`] panels, whose row segments stream sequentially.
//! * [`L2_BLOCK_ELEMS`] = 16384 f64 = 128 KiB — half of L2; default for
//!   [`BlockedCsr`], whose gathers hit random offsets within the block
//!   and therefore want the larger level.
//!
//! `sgd-linalg` deliberately does not depend on `sgd-cpusim` (the
//! dependency runs the other way), so the correspondence is by
//! documented constant, checked by a unit test against the literal
//! byte sizes.
//!
//! ## Determinism
//!
//! Block-major accumulation reassociates each row's dot product (block
//! partials sum in ascending column order), so blocked results are
//! bitwise equal to `seq` on integer data and run-to-run / cross-tier
//! bitwise deterministic on any data — the same class as the reduction
//! kernels in the SIMD tier.

use crate::{simd, CsrMatrix, CsrRow, Matrix, Scalar};

/// Default column-block width for dense panels: 16 KiB of f64, half of
/// the modeled 32 KiB L1d (see module docs).
pub const L1_BLOCK_ELEMS: usize = 2048;

/// Default column-block width for sparse blocks: 128 KiB of f64, half of
/// the modeled 256 KiB per-core L2 (see module docs).
pub const L2_BLOCK_ELEMS: usize = 16384;

/// One column panel: columns `col0 .. col0 + width` of every row, stored
/// row-major and contiguous (structure-of-arrays across panels).
struct Panel {
    col0: usize,
    width: usize,
    /// `rows * width` values, row-major within the panel.
    data: Vec<Scalar>,
}

/// A dense matrix re-laid-out as contiguous column panels for
/// cache-blocked `gemv`.
///
/// Row segments within a panel are contiguous, so the inner dot streams
/// exactly like the row-major kernel — but every row's segment reads the
/// *same* `block`-element slice of `x`, which stays cache-resident.
pub struct SoaMatrix {
    rows: usize,
    cols: usize,
    block: usize,
    panels: Vec<Panel>,
}

impl SoaMatrix {
    /// Re-lays `m` out in panels of the default L1-resident width.
    pub fn from_matrix(m: &Matrix) -> Self {
        Self::with_block(m, L1_BLOCK_ELEMS)
    }

    /// Re-lays `m` out in panels of `block` columns (the last panel may
    /// be narrower).
    ///
    /// # Panics
    /// Panics if `block` is zero.
    pub fn with_block(m: &Matrix, block: usize) -> Self {
        assert!(block > 0, "panel width must be positive");
        let (rows, cols) = (m.rows(), m.cols());
        let mut panels = Vec::with_capacity(cols.div_ceil(block.max(1)));
        let mut col0 = 0;
        while col0 < cols {
            let width = block.min(cols - col0);
            let mut data = Vec::with_capacity(rows * width);
            for i in 0..rows {
                data.extend_from_slice(&m.row(i)[col0..col0 + width]);
            }
            panels.push(Panel { col0, width, data });
            col0 += width;
        }
        SoaMatrix { rows, cols, block, panels }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Configured panel width in columns.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Cache-blocked `y = A x` under the ambient [`crate::KernelTier`].
    ///
    /// Panels accumulate in ascending column order; each panel's row
    /// segment reduces with the tier's pinned tree (see `simd` module
    /// docs), so the result is deterministic and integer-exact.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    // analyzer: root(hot-path-alloc) -- blocked matrix-vector inner loop: per-example hot path, must not allocate
    pub fn gemv(&self, x: &[Scalar], y: &mut [Scalar]) {
        assert_eq!(self.cols, x.len(), "blocked gemv inner dimension");
        assert_eq!(self.rows, y.len(), "blocked gemv outer dimension");
        y.fill(0.0);
        for panel in &self.panels {
            let xb = &x[panel.col0..panel.col0 + panel.width];
            for (i, yi) in y.iter_mut().enumerate() {
                let seg = &panel.data[i * panel.width..(i + 1) * panel.width];
                *yi += simd::dot(seg, xb);
            }
        }
    }
}

/// One column block of a CSR matrix: a CSR sub-matrix over columns
/// `col0 .. col0 + width` with indices rebased to the block.
struct CsrBlock {
    col0: usize,
    width: usize,
    matrix: CsrMatrix,
}

/// A CSR matrix partitioned into column blocks for cache-blocked `spmv`.
///
/// The sparse gather `x[col]` is the random-access stream; restricting
/// each sweep to a `block`-column window keeps the touched slice of `x`
/// inside one cache level. Blocks that contain no non-zeros are not
/// stored, so fully-sparse column ranges cost nothing.
pub struct BlockedCsr {
    rows: usize,
    cols: usize,
    block: usize,
    blocks: Vec<CsrBlock>,
}

impl BlockedCsr {
    /// Partitions `a` into blocks of the default L2-resident width.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        Self::with_block(a, L2_BLOCK_ELEMS)
    }

    /// Partitions `a` into blocks of `block` columns (the last block may
    /// be narrower).
    ///
    /// # Panics
    /// Panics if `block` is zero.
    pub fn with_block(a: &CsrMatrix, block: usize) -> Self {
        assert!(block > 0, "block width must be positive");
        let (rows, cols) = (a.rows(), a.cols());
        let nblocks = cols.div_ceil(block.max(1));
        // Per-block row-entry builders; rebase every entry's column into
        // its block's window.
        let mut entries: Vec<Vec<Vec<(u32, Scalar)>>> = vec![vec![Vec::new(); rows]; nblocks];
        // `i` indexes into whichever per-block builder each entry's
        // column selects, so no single iterator can replace the range.
        #[allow(clippy::needless_range_loop)]
        for i in 0..rows {
            let r = a.row(i);
            for (&c, &v) in r.cols.iter().zip(r.vals) {
                let bi = c as usize / block;
                entries[bi][i].push((c - (bi * block) as u32, v));
            }
        }
        let mut blocks = Vec::new();
        for (bi, rows_entries) in entries.iter().enumerate() {
            if rows_entries.iter().all(Vec::is_empty) {
                continue;
            }
            let col0 = bi * block;
            let width = block.min(cols - col0);
            blocks.push(CsrBlock {
                col0,
                width,
                matrix: CsrMatrix::from_row_entries(rows, width, rows_entries),
            });
        }
        BlockedCsr { rows, cols, block, blocks }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Configured block width in columns.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Stored non-zeros across all blocks (equals the source nnz).
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.matrix.nnz()).sum()
    }

    /// Cache-blocked `y = A x` under the ambient [`crate::KernelTier`].
    ///
    /// Blocks accumulate in ascending column order; determinism class as
    /// [`SoaMatrix::gemv`]. Because every rebased index is `< block`,
    /// the SIMD gather path is always in `i32` range regardless of the
    /// full matrix width.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    // analyzer: root(hot-path-alloc) -- blocked sparse matrix-vector inner loop: per-example hot path, must not allocate
    pub fn spmv(&self, x: &[Scalar], y: &mut [Scalar]) {
        assert_eq!(self.cols, x.len(), "blocked spmv inner dimension");
        assert_eq!(self.rows, y.len(), "blocked spmv outer dimension");
        y.fill(0.0);
        for blk in &self.blocks {
            let xb = &x[blk.col0..blk.col0 + blk.width];
            for (i, yi) in y.iter_mut().enumerate() {
                let row = blk.matrix.row(i);
                if row.nnz() > 0 {
                    *yi += row_dot(row, xb);
                }
            }
        }
    }
}

/// One rebased-row dot under the ambient tier.
fn row_dot(row: CsrRow<'_>, xb: &[Scalar]) -> Scalar {
    simd::csr_row_dot(row, xb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pool, seq, KernelTier};

    #[test]
    fn block_constants_match_the_documented_cache_budgets() {
        // Half of cpusim's modeled 32 KiB L1d and 256 KiB per-core L2.
        assert_eq!(L1_BLOCK_ELEMS * std::mem::size_of::<Scalar>(), 32 * 1024 / 2);
        assert_eq!(L2_BLOCK_ELEMS * std::mem::size_of::<Scalar>(), 256 * 1024 / 2);
    }

    fn int_matrix(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 7) % 9) as Scalar - 4.0)
    }

    #[test]
    fn blocked_gemv_matches_seq_bitwise_on_integer_data() {
        // Widths straddling the panel boundary, including tails of 1..block.
        for cols in [5, 7, 8, 9, 15, 16, 17] {
            let m = int_matrix(13, cols);
            let soa = SoaMatrix::with_block(&m, 8);
            let x: Vec<Scalar> = (0..cols).map(|i| ((i % 5) as Scalar) - 2.0).collect();
            let mut got = vec![0.0; 13];
            let mut expect = vec![0.0; 13];
            seq::gemv(&m, &x, &mut expect);
            for tier in [KernelTier::Scalar, KernelTier::Simd, KernelTier::SimdPortable] {
                pool::with_tier(tier, || soa.gemv(&x, &mut got));
                assert_eq!(got, expect, "cols={cols} {tier:?}");
            }
        }
    }

    #[test]
    fn blocked_spmv_matches_seq_bitwise_on_integer_data() {
        let d = Matrix::from_fn(21, 53, |i, j| {
            if (i * 17 + j * 3) % 4 == 0 {
                ((i + 2 * j) % 11) as Scalar - 5.0
            } else {
                0.0
            }
        });
        let s = CsrMatrix::from_dense(&d);
        let blocked = BlockedCsr::with_block(&s, 16);
        assert_eq!(blocked.nnz(), s.nnz());
        let x: Vec<Scalar> = (0..53).map(|i| ((i % 7) as Scalar) - 3.0).collect();
        let mut expect = vec![0.0; 21];
        seq::spmv(&s, &x, &mut expect);
        for tier in [KernelTier::Scalar, KernelTier::Simd, KernelTier::SimdPortable] {
            let mut got = vec![0.0; 21];
            pool::with_tier(tier, || blocked.spmv(&x, &mut got));
            assert_eq!(got, expect, "{tier:?}");
        }
    }

    #[test]
    fn empty_column_blocks_are_not_stored() {
        // Non-zeros only in columns 0..4 and 40..44 of a 64-wide matrix:
        // with block 8, only two of eight blocks should materialize.
        let d = Matrix::from_fn(6, 64, |i, j| {
            if j < 4 || (40..44).contains(&j) {
                (i + j + 1) as Scalar
            } else {
                0.0
            }
        });
        let blocked = BlockedCsr::with_block(&CsrMatrix::from_dense(&d), 8);
        assert_eq!(blocked.blocks.len(), 2);
        let x: Vec<Scalar> = (0..64).map(|i| (i % 3) as Scalar).collect();
        let mut got = vec![0.0; 6];
        let mut expect = vec![0.0; 6];
        blocked.spmv(&x, &mut got);
        seq::spmv(&CsrMatrix::from_dense(&d), &x, &mut expect);
        assert_eq!(got, expect);
    }

    #[test]
    fn blocked_results_are_run_to_run_deterministic_on_fractional_data() {
        let m = Matrix::from_fn(9, 37, |i, j| ((i * 13 + j) % 101) as Scalar * 0.013 - 0.5);
        let soa = SoaMatrix::with_block(&m, 8);
        let x: Vec<Scalar> = (0..37).map(|i| (i as Scalar) * 0.07 - 1.1).collect();
        let mut a = vec![0.0; 9];
        let mut b = vec![0.0; 9];
        pool::with_tier(KernelTier::Simd, || {
            soa.gemv(&x, &mut a);
            soa.gemv(&x, &mut b);
        });
        assert_eq!(a, b);
    }
}
