//! The `Exec` trait: one primitive API executed on CPU or simulated GPU.
//!
//! The paper's synchronous SGD is written once against ViennaCL's primitive
//! API and compiled for CPU or GPU. `Exec` is our equivalent: the models in
//! `sgd-models` compute losses and gradients generically over an `Exec`,
//! and the study harness instantiates them with [`CpuExec`] (sequential,
//! or parallel on the persistent worker pool at the ambient
//! [`crate::pool::with_threads`] width — inherited even when the executor
//! runs inside a pool task) or with the GPU simulator's executor (which
//! performs the same arithmetic while charging simulated cycles).
//!
//! Element-wise operations carry an explicit `flops_per_elem` so a
//! cost-accounting executor knows the arithmetic intensity without
//! inspecting the closure.

use crate::{Backend, CsrMatrix, Matrix, Scalar};

/// Execution backend abstraction shared by CPU and simulated GPU.
pub trait Exec {
    /// Dot product `x . y`.
    fn dot(&mut self, x: &[Scalar], y: &[Scalar]) -> Scalar;
    /// `y += a * x`.
    fn axpy(&mut self, a: Scalar, x: &[Scalar], y: &mut [Scalar]);
    /// `x *= a`.
    fn scale(&mut self, a: Scalar, x: &mut [Scalar]);
    /// Sum of elements.
    fn sum(&mut self, x: &[Scalar]) -> Scalar;
    /// `y = A x`.
    fn gemv(&mut self, a: &Matrix, x: &[Scalar], y: &mut [Scalar]);
    /// `y = A^T x`.
    fn gemv_t(&mut self, a: &Matrix, x: &[Scalar], y: &mut [Scalar]);
    /// `C = A B`.
    fn gemm(&mut self, a: &Matrix, b: &Matrix, c: &mut Matrix);
    /// `C = A B^T`.
    fn gemm_nt(&mut self, a: &Matrix, b: &Matrix, c: &mut Matrix);
    /// `C = A^T B`.
    fn gemm_tn(&mut self, a: &Matrix, b: &Matrix, c: &mut Matrix);
    /// `y = A x` over CSR.
    fn spmv(&mut self, a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]);
    /// `y = A^T x` over CSR.
    fn spmv_t(&mut self, a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]);
    /// `x[i] = f(x[i])`; `flops_per_elem` declares the arithmetic cost of
    /// one application of `f` for cost-accounting executors.
    fn map<F>(&mut self, x: &mut [Scalar], flops_per_elem: f64, f: F)
    where
        F: Fn(Scalar) -> Scalar + Sync + Send;
    /// `out[i] = f(a[i], b[i])`.
    fn zip<F>(&mut self, a: &[Scalar], b: &[Scalar], out: &mut [Scalar], flops_per_elem: f64, f: F)
    where
        F: Fn(Scalar, Scalar) -> Scalar + Sync + Send;
    /// `C[i][j] += b[j]` for every row `i` (bias broadcast).
    fn add_row_bias(&mut self, c: &mut Matrix, b: &[Scalar]);
    /// `out[j] = sum_i A[i][j]` (bias gradient reduction).
    fn col_sums(&mut self, a: &Matrix, out: &mut [Scalar]);
    /// Fused row-wise softmax + cross-entropy: `z` holds logits on entry
    /// and is replaced by the output delta `(softmax - onehot) / rows`;
    /// returns the mean cross-entropy loss over the rows. `classes[i]` is
    /// the target class index of row `i`.
    fn softmax_xent(&mut self, z: &mut Matrix, classes: &[usize]) -> Scalar;
}

/// Reference implementation of the fused softmax/cross-entropy kernel,
/// shared by the CPU and simulated-GPU executors.
pub fn softmax_xent_reference(z: &mut Matrix, classes: &[usize]) -> Scalar {
    assert_eq!(z.rows(), classes.len(), "one class per row required");
    let rows = z.rows();
    if rows == 0 {
        return 0.0;
    }
    let inv = 1.0 / rows as Scalar;
    let mut loss = 0.0;
    for (i, &target) in classes.iter().enumerate() {
        let row = z.row_mut(i);
        let max = row.iter().cloned().fold(Scalar::NEG_INFINITY, Scalar::max);
        let mut denom = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            denom += *v;
        }
        assert!(target < row.len(), "class {target} out of range");
        loss -= (row[target] / denom).max(Scalar::MIN_POSITIVE).ln();
        for (j, v) in row.iter_mut().enumerate() {
            let p = *v / denom;
            *v = (p - if j == target { 1.0 } else { 0.0 }) * inv;
        }
    }
    loss * inv
}

/// CPU executor: wraps a [`Backend`] (sequential or parallel).
#[derive(Clone, Copy, Debug)]
pub struct CpuExec(pub Backend);

impl CpuExec {
    /// Sequential CPU executor.
    pub fn seq() -> Self {
        CpuExec(Backend::seq())
    }

    /// Parallel CPU executor (current rayon pool, ViennaCL GEMM threshold).
    pub fn par() -> Self {
        CpuExec(Backend::par())
    }
}

impl Exec for CpuExec {
    fn dot(&mut self, x: &[Scalar], y: &[Scalar]) -> Scalar {
        self.0.dot(x, y)
    }

    fn axpy(&mut self, a: Scalar, x: &[Scalar], y: &mut [Scalar]) {
        self.0.axpy(a, x, y)
    }

    fn scale(&mut self, a: Scalar, x: &mut [Scalar]) {
        self.0.scale(a, x)
    }

    fn sum(&mut self, x: &[Scalar]) -> Scalar {
        self.0.sum(x)
    }

    fn gemv(&mut self, a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
        self.0.gemv(a, x, y)
    }

    fn gemv_t(&mut self, a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
        self.0.gemv_t(a, x, y)
    }

    fn gemm(&mut self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        self.0.gemm(a, b, c)
    }

    fn gemm_nt(&mut self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        self.0.gemm_nt(a, b, c)
    }

    fn gemm_tn(&mut self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        self.0.gemm_tn(a, b, c)
    }

    fn spmv(&mut self, a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
        self.0.spmv(a, x, y)
    }

    fn spmv_t(&mut self, a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
        self.0.spmv_t(a, x, y)
    }

    fn map<F>(&mut self, x: &mut [Scalar], _flops_per_elem: f64, f: F)
    where
        F: Fn(Scalar) -> Scalar + Sync + Send,
    {
        self.0.map_inplace(x, f)
    }

    fn zip<F>(&mut self, a: &[Scalar], b: &[Scalar], out: &mut [Scalar], _flops_per_elem: f64, f: F)
    where
        F: Fn(Scalar, Scalar) -> Scalar + Sync + Send,
    {
        self.0.zip_map(a, b, out, f)
    }

    fn add_row_bias(&mut self, c: &mut Matrix, b: &[Scalar]) {
        assert_eq!(c.cols(), b.len(), "bias width mismatch");
        for i in 0..c.rows() {
            for (v, &bj) in c.row_mut(i).iter_mut().zip(b) {
                *v += bj;
            }
        }
    }

    fn col_sums(&mut self, a: &Matrix, out: &mut [Scalar]) {
        assert_eq!(a.cols(), out.len(), "col_sums width mismatch");
        out.fill(0.0);
        for i in 0..a.rows() {
            for (o, &v) in out.iter_mut().zip(a.row(i)) {
                *o += v;
            }
        }
    }

    fn softmax_xent(&mut self, z: &mut Matrix, classes: &[usize]) -> Scalar {
        softmax_xent_reference(z, classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;

    #[test]
    fn cpu_exec_delegates_to_backend() {
        let mut e = CpuExec::seq();
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut y = vec![0.0; 2];
        e.gemv(&a, &[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
        assert_eq!(e.dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn gemm_variants_consistent_via_exec() {
        let mut e = CpuExec::par();
        let a = Matrix::from_fn(3, 4, |i, j| (i + 2 * j) as Scalar);
        let b = Matrix::from_fn(5, 4, |i, j| (2 * i + j) as Scalar);
        // C1 = A B^T directly; C2 = A (B^T) via explicit transpose + gemm.
        let mut c1 = Matrix::zeros(3, 5);
        e.gemm_nt(&a, &b, &mut c1);
        let bt = b.transposed();
        let mut c2 = Matrix::zeros(3, 5);
        e.gemm(&a, &bt, &mut c2);
        assert!(approx_eq_slice(c1.as_slice(), c2.as_slice(), 1e-12));
    }

    #[test]
    fn add_row_bias_broadcasts() {
        let mut e = CpuExec::seq();
        let mut c = Matrix::zeros(2, 3);
        e.add_row_bias(&mut c, &[1.0, 2.0, 3.0]);
        assert_eq!(c.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(c.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_sums_reduces_rows() {
        let mut e = CpuExec::seq();
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[10.0, 20.0], &[100.0, 200.0]]);
        let mut out = vec![0.0; 2];
        e.col_sums(&a, &mut out);
        assert_eq!(out, vec![111.0, 222.0]);
    }

    #[test]
    fn softmax_xent_known_case() {
        let mut e = CpuExec::seq();
        // Uniform logits: softmax = [1/2, 1/2], loss = ln 2, delta = (p - onehot)/1.
        let mut z = Matrix::from_rows(&[&[0.0, 0.0]]);
        let loss = e.softmax_xent(&mut z, &[1]);
        assert!((loss - (2.0 as Scalar).ln()).abs() < 1e-12);
        assert!((z.at(0, 0) - 0.5).abs() < 1e-12);
        assert!((z.at(0, 1) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn softmax_xent_is_shift_invariant_and_averaged() {
        let mut e = CpuExec::seq();
        let mut z1 = Matrix::from_rows(&[&[1.0, 3.0], &[2.0, -1.0]]);
        let mut z2 = Matrix::from_rows(&[&[101.0, 103.0], &[52.0, 49.0]]);
        let l1 = e.softmax_xent(&mut z1, &[0, 1]);
        let l2 = e.softmax_xent(&mut z2, &[0, 1]);
        assert!((l1 - l2).abs() < 1e-9);
        assert!(approx_eq_slice(z1.as_slice(), z2.as_slice(), 1e-9));
        // Deltas of each row sum to zero.
        for i in 0..2 {
            let s: Scalar = z1.row(i).iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn map_and_zip_apply_closures() {
        let mut e = CpuExec::seq();
        let mut x = vec![1.0, 4.0, 9.0];
        e.map(&mut x, 1.0, |v| v.sqrt());
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
        let mut out = vec![0.0; 3];
        e.zip(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0], &mut out, 1.0, |a, b| b - a);
        assert_eq!(out, vec![9.0, 18.0, 27.0]);
    }
}
