//! Dense and sparse (CSR) linear algebra primitives with sequential and
//! thread-parallel backends.
//!
//! This crate plays the role ViennaCL plays in the paper: a single primitive
//! API (`Backend`) whose implementations differ only in the execution
//! strategy, so the synchronous SGD code is *identical* across devices and
//! only the backend changes. The parallel backend reproduces ViennaCL's
//! documented behaviour of not parallelizing small matrix products (the
//! result-size threshold), which the paper identifies as the cause of the
//! ~2X MLP speedup anomaly in Table II / Fig. 6.
//!
//! # Example
//!
//! ```
//! use sgd_linalg::{Backend, Matrix};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let x = vec![1.0, 1.0];
//! let mut y = vec![0.0; 2];
//! Backend::seq().gemv(&a, &x, &mut y);
//! assert_eq!(y, vec![3.0, 7.0]);
//! ```

mod backend;
mod blocked;
mod csr;
mod dense;
mod exec;
mod par;
pub mod pool;
mod seq;
mod simd;

pub use backend::{Backend, DEFAULT_GEMM_PARALLEL_THRESHOLD};
pub use blocked::{BlockedCsr, SoaMatrix, L1_BLOCK_ELEMS, L2_BLOCK_ELEMS};
pub use csr::{CsrMatrix, CsrRow};
pub use dense::Matrix;
pub use exec::{softmax_xent_reference, CpuExec, Exec};
pub use par::MIN_PARALLEL_LEN;
pub use simd::{avx2_available, KernelTier, SIMD_LANES};

/// Scalar type used throughout the study.
///
/// The paper's C++ implementation uses single precision on the GPU; we use
/// `f64` uniformly so that CPU Hogwild updates map onto `AtomicU64` cells
/// and gradient checking is numerically well conditioned. The GPU cost
/// model charges 8-byte accesses accordingly.
pub type Scalar = f64;

/// Returns `true` when `a` and `b` agree to within `tol` absolutely or
/// relatively (whichever is looser). Convenience used pervasively in tests.
pub fn approx_eq(a: Scalar, b: Scalar, tol: Scalar) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

/// Element-wise [`approx_eq`] over two slices of equal length.
pub fn approx_eq_slice(a: &[Scalar], b: &[Scalar], tol: Scalar) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| approx_eq(x, y, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(approx_eq(1e9, 1e9 + 1.0, 1e-6));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
    }

    #[test]
    fn approx_eq_slice_checks_length() {
        assert!(!approx_eq_slice(&[1.0], &[1.0, 2.0], 1e-9));
        assert!(approx_eq_slice(&[1.0, 2.0], &[1.0, 2.0], 1e-9));
    }
}
