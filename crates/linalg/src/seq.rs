//! Sequential reference implementations of the primitives.
//!
//! These are the semantic ground truth: the parallel backend and the GPU
//! simulator's functional kernels are tested against them.

use crate::{CsrMatrix, Matrix, Scalar};

pub(crate) fn dot(x: &[Scalar], y: &[Scalar]) -> Scalar {
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

pub(crate) fn axpy(a: Scalar, x: &[Scalar], y: &mut [Scalar]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

pub(crate) fn scale(a: Scalar, x: &mut [Scalar]) {
    for v in x.iter_mut() {
        *v *= a;
    }
}

// analyzer: root(hot-path-alloc) -- dense matrix-vector inner loop: per-example hot path of the linear models
pub(crate) fn gemv(a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = dot(a.row(i), x);
    }
}

pub(crate) fn gemv_t(a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
    y.fill(0.0);
    for (i, &xi) in x.iter().enumerate() {
        axpy(xi, a.row(i), y);
    }
}

// analyzer: root(hot-path-alloc) -- dense matmul inner loop: every SGD step runs through here, allocation would dominate small batches
pub(crate) fn gemm(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (n, k, m) = (a.rows(), a.cols(), b.cols());
    c.fill_zero();
    // i-k-j loop order keeps the inner loop streaming over contiguous rows
    // of B and C.
    for i in 0..n {
        let a_row = a.row(i);
        for (p, &aip) in a_row.iter().enumerate().take(k) {
            if aip == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            let c_row = c.row_mut(i);
            for j in 0..m {
                c_row[j] += aip * b_row[j];
            }
        }
    }
}

// gemm_nt lives in `simd.rs` (`simd::gemm_nt`): its dot-based formulation
// performs no zero-skip, so the inner dot is tier-routed; the Scalar tier
// arm there calls `seq::dot` and is the scalar ground truth.

pub(crate) fn gemm_tn(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    // C = A^T B with A: n x k, B: n x m, C: k x m. Accumulate rank-1
    // updates row by row so every inner loop is contiguous.
    c.fill_zero();
    for p in 0..a.rows() {
        let a_row = a.row(p);
        let b_row = b.row(p);
        for (i, &api) in a_row.iter().enumerate() {
            if api != 0.0 {
                axpy(api, b_row, c.row_mut(i));
            }
        }
    }
}

// analyzer: root(hot-path-alloc) -- sparse matrix-vector inner loop: per-example hot path on the paper's sparse datasets
pub(crate) fn spmv(a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = a.row(i).dot(x);
    }
}

pub(crate) fn spmv_t(a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
    y.fill(0.0);
    for (i, &xi) in x.iter().enumerate() {
        a.row(i).axpy_into(xi, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_skips_zero_entries_correctly() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 0.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[3.0, 4.0]]);
        let mut c = Matrix::zeros(2, 2);
        gemm(&a, &b, &mut c);
        assert_eq!(c.as_slice(), &[6.0, 8.0, 1.0, 1.0]);
    }

    #[test]
    fn gemm_overwrites_previous_content() {
        let a = Matrix::from_rows(&[&[1.0]]);
        let b = Matrix::from_rows(&[&[2.0]]);
        let mut c = Matrix::from_rows(&[&[99.0]]);
        gemm(&a, &b, &mut c);
        assert_eq!(c.at(0, 0), 2.0);
    }

    #[test]
    fn gemv_t_zeroes_output_first() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let mut y = vec![5.0, 5.0];
        gemv_t(&a, &[3.0], &mut y);
        assert_eq!(y, vec![3.0, 6.0]);
    }
}
