//! Thread-parallel implementations of the primitives.
//!
//! All kernels split work into contiguous chunks sized by the ambient
//! width from [`crate::pool`] and execute them on the persistent worker
//! pool ([`crate::pool::run`]), so the study harness controls the degree
//! of parallelism by wrapping work in [`crate::pool::with_threads`] (the
//! paper varies CPU thread counts the same way through OpenMP). Chunk
//! assignment depends only on the requested width, never on which pool
//! worker executes a chunk, so results are bit-identical across pool
//! sizes and dispatch modes.

use std::sync::Mutex;

use crate::{pool, seq, simd, CsrMatrix, Matrix, Scalar};

/// Below this much work a parallel kernel is not worth the
/// parallel-dispatch overhead and we fall back to the sequential
/// implementation. ViennaCL's OpenMP backend has the same kind of guard.
/// Measured in elements for element-wise kernels and in element-ops
/// (`len * work_per_elem`) for row-granular ones — see
/// [`chunk_len_weighted`].
pub const MIN_PARALLEL_LEN: usize = 4096;

/// Contiguous chunk size splitting `len` elements across the ambient
/// thread count, or `None` when the sequential path should run instead.
///
/// The dispatch floor lives *inside* this function so no kernel can
/// forget it: PR 4 fixed the missing guard in `gemv` by adding a caller-
/// side check, and `spmv` then shipped without one — the same bug again.
/// Callers whose per-element work is more than one scalar op pass it as
/// `work_per_elem` so the floor compares total work (a flops proxy), not
/// row count, against [`MIN_PARALLEL_LEN`].
///
/// Deliberately *not* routed through here: `gemv_t` / `spmv_t`. Their
/// partial-vector shape (chunk count = clamped thread count) is pinned
/// by the bit-identity tests — adding a floor would change reduction
/// order on fractional data and silently shift every recorded loss
/// trajectory. Their guard is the `t <= 1` early-out they already have.
fn chunk_len_weighted(len: usize, work_per_elem: usize) -> Option<usize> {
    let t = pool::current_num_threads();
    if t <= 1 || len < 2 || len.saturating_mul(work_per_elem.max(1)) < MIN_PARALLEL_LEN {
        None
    } else {
        Some(len.div_ceil(t))
    }
}

/// [`chunk_len_weighted`] for kernels doing ~one scalar op per element.
fn chunk_len(len: usize) -> Option<usize> {
    chunk_len_weighted(len, 1)
}

/// Splits `data` into `chunk`-sized contiguous pieces and runs
/// `f(base_index, piece)` as tasks on the persistent worker pool. Task
/// `i` owns piece `i`; the per-piece `Mutex` is uncontended and exists
/// only to hand the `&mut` across the pool safely.
fn for_chunks_mut<F>(data: &mut [Scalar], chunk: usize, f: F)
where
    F: Fn(usize, &mut [Scalar]) + Sync,
{
    let pieces: Vec<Mutex<(usize, &mut [Scalar])>> =
        data.chunks_mut(chunk).enumerate().map(|(ci, p)| Mutex::new((ci * chunk, p))).collect();
    pool::run(pieces.len(), |i| {
        // analyzer: allow(panic-freedom) -- each chunk mutex is touched by exactly one worker; it cannot be poisoned or contended
        let mut piece = pieces[i].lock().expect("unshared chunk mutex");
        let (base, ys) = &mut *piece;
        f(*base, ys);
    });
}

/// Maps `f(base_index, piece)` over `chunk`-sized pieces of `data` on the
/// persistent worker pool, collecting the per-chunk results in order
/// (slot `i` holds chunk `i`'s result, independent of execution order).
fn map_chunks<R, F>(data: &[Scalar], chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &[Scalar]) -> R + Sync,
{
    let pieces: Vec<&[Scalar]> = data.chunks(chunk).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..pieces.len()).map(|_| Mutex::new(None)).collect();
    pool::run(pieces.len(), |i| {
        // analyzer: allow(panic-freedom) -- each result slot is touched by exactly one worker; it cannot be poisoned or contended
        *slots[i].lock().expect("unshared result slot") = Some(f(i * chunk, pieces[i]));
    });
    slots
        .into_iter()
        // analyzer: allow(panic-freedom) -- pool::run executed every index, so every unshared slot is filled
        .map(|s| s.into_inner().expect("unshared result slot").expect("pool ran every chunk"))
        .collect()
}

pub(crate) fn dot(x: &[Scalar], y: &[Scalar]) -> Scalar {
    match chunk_len(x.len()) {
        Some(chunk) => map_chunks(x, chunk, |base, xs| simd::dot(xs, &y[base..base + xs.len()]))
            .into_iter()
            .sum(),
        None => simd::dot(x, y),
    }
}

pub(crate) fn axpy(a: Scalar, x: &[Scalar], y: &mut [Scalar]) {
    match chunk_len(x.len()) {
        Some(chunk) => {
            for_chunks_mut(y, chunk, |base, ys| simd::axpy(a, &x[base..base + ys.len()], ys));
        }
        None => simd::axpy(a, x, y),
    }
}

pub(crate) fn scale(a: Scalar, x: &mut [Scalar]) {
    match chunk_len(x.len()) {
        Some(chunk) => {
            for_chunks_mut(x, chunk, |_, xs| simd::scale(a, xs));
        }
        None => simd::scale(a, x),
    }
}

pub(crate) fn sum(x: &[Scalar]) -> Scalar {
    match chunk_len(x.len()) {
        Some(chunk) => map_chunks(x, chunk, |_, xs| xs.iter().sum::<Scalar>()).into_iter().sum(),
        None => x.iter().sum(),
    }
}

pub(crate) fn map_inplace<F>(x: &mut [Scalar], f: F)
where
    F: Fn(Scalar) -> Scalar + Sync + Send,
{
    match chunk_len(x.len()) {
        Some(chunk) => {
            for_chunks_mut(x, chunk, |_, xs| {
                for v in xs.iter_mut() {
                    *v = f(*v);
                }
            });
        }
        _ => {
            for v in x.iter_mut() {
                *v = f(*v);
            }
        }
    }
}

pub(crate) fn zip_map<F>(a: &[Scalar], b: &[Scalar], out: &mut [Scalar], f: F)
where
    F: Fn(Scalar, Scalar) -> Scalar + Sync + Send,
{
    match chunk_len(a.len()) {
        Some(chunk) => {
            for_chunks_mut(out, chunk, |base, os| {
                for (off, o) in os.iter_mut().enumerate() {
                    *o = f(a[base + off], b[base + off]);
                }
            });
        }
        _ => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = f(x, y);
            }
        }
    }
}

pub(crate) fn gemv(a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
    // Guarded like every other element-wise kernel: an MLP-sized product
    // (~100 output rows) is pure dispatch overhead when parallelized. The
    // floor stays row-count-based (not flops-based) on purpose — it is
    // the PR 4 behaviour the pool bench and the MLP trajectories pin.
    match chunk_len(y.len()) {
        Some(chunk) => for_chunks_mut(y, chunk, |base, ys| simd::gemv_rows(a, x, base, ys)),
        None => simd::gemv(a, x, y),
    }
}

/// Scatter reductions materialize one dense partial per chunk; capping the
/// chunk count bounds that memory traffic when the output is very wide
/// (news: 1.35 M columns), like a two-level tree reduction would.
const MAX_SCATTER_PARTIALS: usize = 8;

// analyzer: root(hot-path-alloc) -- parallel scatter kernel: per-step hot path, only the bounded per-chunk partials may allocate
pub(crate) fn gemv_t(a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
    // Scatter along rows races on y; accumulate per-chunk partials and add.
    let t = pool::current_num_threads().clamp(1, MAX_SCATTER_PARTIALS);
    if t <= 1 {
        return simd::gemv_t(a, x, y);
    }
    let cols = a.cols();
    // `div_ceil`, not `len / t`: flooring yields up to `t + 1` chunks
    // (len 9, t 8 -> nine partials), breaking the MAX_SCATTER_PARTIALS
    // memory cap on wide outputs.
    let chunk = x.len().div_ceil(t).max(1);
    let partials = map_chunks(x, chunk, |base, xs| {
        // analyzer: allow(hot-path-alloc) -- one dense partial per chunk, capped at MAX_SCATTER_PARTIALS allocations per call
        let mut acc = vec![0.0; cols];
        for (off, &xi) in xs.iter().enumerate() {
            // Element-wise, so the tier swap cannot change bits relative
            // to the scalar chunking (axpy is order-preserving per lane).
            simd::axpy(xi, a.row(base + off), &mut acc);
        }
        acc
    });
    y.fill(0.0);
    for p in partials {
        simd::axpy(1.0, &p, y);
    }
}

// analyzer: root(hot-path-alloc) -- parallel matmul: per-step hot path, only the chunk scaffolding may allocate
pub(crate) fn gemm(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (k, m) = (a.cols(), b.cols());
    let rows = a.rows();
    // Flops-based floor: each output row costs ~k*m multiply-adds, so a
    // short-and-wide product still parallelizes while a genuinely tiny
    // one (below MIN_PARALLEL_LEN element-ops total) stays sequential.
    // This sits *below* the Backend-level ViennaCL result-size threshold
    // and never re-serializes a product that threshold admits at its
    // default — the paper's Fig. 6 anomaly reproduction is unaffected.
    let rchunk = match chunk_len_weighted(rows, k.saturating_mul(m)) {
        Some(rc) if m > 0 => rc,
        _ => return seq::gemm(a, b, c),
    };
    for_chunks_mut(c.as_mut_slice(), rchunk * m, |base, piece| {
        for (off, c_row) in piece.chunks_mut(m).enumerate() {
            let i = base / m + off;
            c_row.fill(0.0);
            let a_row = a.row(i);
            for (p, &aip) in a_row.iter().enumerate().take(k) {
                // Zero-skip contract (see `Backend::gemm`): exact zeros of
                // A are structural — identical in seq/par and every tier.
                if aip == 0.0 {
                    continue;
                }
                // axpy is element-wise (order-preserving), so the tier
                // swap keeps gemm bitwise equal to `seq::gemm` on any data.
                simd::axpy(aip, b.row(p), c_row);
            }
        }
    });
}

pub(crate) fn gemm_nt(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let m = b.rows();
    let rows = a.rows();
    // Same flops-based floor as `gemm`: one output row = m dots of len k.
    let rchunk = match chunk_len_weighted(rows, a.cols().saturating_mul(m)) {
        Some(rc) if m > 0 => rc,
        // Below-threshold fallback must stay tier-routed so the result is
        // bitwise independent of whether the chunking engaged.
        _ => return simd::gemm_nt(a, b, c),
    };
    for_chunks_mut(c.as_mut_slice(), rchunk * m, |base, piece| {
        // Tier-routed inner dot (no zero-skip, so only reduction order
        // changes): each chunk resolves the ambient tier once, exactly
        // like the gemv/spmv row chunks.
        simd::gemm_nt_rows(a, b, base / m, piece);
    });
}

pub(crate) fn gemm_tn(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    // Parallelize over rows of C = A^T B: row i of C gathers column i of A
    // against all rows of B.
    let m = b.cols();
    let rows = a.cols();
    // Same flops-based floor as `gemm`: one output row of C = A^T B costs
    // ~a.rows() axpys of length m.
    let rchunk = match chunk_len_weighted(rows, a.rows().saturating_mul(m)) {
        Some(rc) if m > 0 => rc,
        _ => return seq::gemm_tn(a, b, c),
    };
    for_chunks_mut(c.as_mut_slice(), rchunk * m, |base, piece| {
        for (off, c_row) in piece.chunks_mut(m).enumerate() {
            let i = base / m + off;
            c_row.fill(0.0);
            for p in 0..a.rows() {
                let api = a.at(p, i);
                // Same zero-skip contract as `gemm`, same tier-safe axpy.
                if api != 0.0 {
                    simd::axpy(api, b.row(p), c_row);
                }
            }
        }
    });
}

pub(crate) fn spmv(a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
    // Regression fix: this kernel shipped with *no* dispatch floor (the
    // bug PR 4 fixed in `gemv`), so a tiny sparse matvec paid a full pool
    // submission for nothing. Work per row is the average nnz, making the
    // floor a flops proxy (~total nnz) rather than a row count — a short
    // but dense-rowed CSR still parallelizes. Row-granular chunking is
    // order-preserving per row, so the guard cannot change bits.
    let avg_nnz = a.nnz() / a.rows().max(1);
    match chunk_len_weighted(y.len(), avg_nnz) {
        Some(chunk) => for_chunks_mut(y, chunk, |base, ys| simd::spmv_rows(a, x, base, ys)),
        None => simd::spmv(a, x, y),
    }
}

// analyzer: root(hot-path-alloc) -- parallel sparse scatter kernel: per-step hot path, only the bounded per-chunk partials may allocate
pub(crate) fn spmv_t(a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
    let t = pool::current_num_threads().clamp(1, MAX_SCATTER_PARTIALS);
    if t <= 1 {
        return seq::spmv_t(a, x, y);
    }
    let cols = a.cols();
    // Same `div_ceil` fix as `gemv_t`: never exceed `t` partials.
    let chunk = x.len().div_ceil(t).max(1);
    let partials = map_chunks(x, chunk, |base, xs| {
        // analyzer: allow(hot-path-alloc) -- one dense partial per chunk, capped at MAX_SCATTER_PARTIALS allocations per call
        let mut acc = vec![0.0; cols];
        for (off, &xi) in xs.iter().enumerate() {
            if xi != 0.0 {
                a.row(base + off).axpy_into(xi, &mut acc);
            }
        }
        acc
    });
    y.fill(0.0);
    for p in partials {
        simd::axpy(1.0, &p, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;

    #[test]
    fn large_dot_crosses_parallel_threshold() {
        let x: Vec<Scalar> = (0..MIN_PARALLEL_LEN * 2).map(|i| (i % 13) as Scalar).collect();
        let y: Vec<Scalar> = (0..MIN_PARALLEL_LEN * 2).map(|i| (i % 7) as Scalar).collect();
        let expect = seq::dot(&x, &y);
        assert!((dot(&x, &y) - expect).abs() <= 1e-9 * expect.abs());
    }

    #[test]
    fn gemv_t_partials_reduce_correctly() {
        let a = Matrix::from_fn(97, 11, |i, j| ((i * 31 + j * 7) % 5) as Scalar - 2.0);
        let x: Vec<Scalar> = (0..97).map(|i| (i % 3) as Scalar).collect();
        let mut got = vec![0.0; 11];
        let mut expect = vec![0.0; 11];
        gemv_t(&a, &x, &mut got);
        seq::gemv_t(&a, &x, &mut expect);
        assert!(approx_eq_slice(&got, &expect, 1e-9));
    }

    #[test]
    fn spmv_t_partials_reduce_correctly() {
        let d =
            Matrix::from_fn(53, 17, |i, j| if (i + j) % 4 == 0 { (i + j) as Scalar } else { 0.0 });
        let s = CsrMatrix::from_dense(&d);
        let x: Vec<Scalar> = (0..53).map(|i| (i % 5) as Scalar - 2.0).collect();
        let mut got = vec![0.0; 17];
        let mut expect = vec![0.0; 17];
        spmv_t(&s, &x, &mut got);
        seq::spmv_t(&s, &x, &mut expect);
        assert!(approx_eq_slice(&got, &expect, 1e-9));
    }

    #[test]
    fn large_elementwise_kernels_match_seq() {
        let n = MIN_PARALLEL_LEN * 2 + 17;
        let x: Vec<Scalar> = (0..n).map(|i| (i % 19) as Scalar * 0.25).collect();
        let mut y1: Vec<Scalar> = (0..n).map(|i| (i % 5) as Scalar).collect();
        let mut y2 = y1.clone();
        axpy(1.5, &x, &mut y1);
        seq::axpy(1.5, &x, &mut y2);
        assert!(approx_eq_slice(&y1, &y2, 1e-12));

        let mut a1 = x.clone();
        let mut a2 = x.clone();
        map_inplace(&mut a1, |v| v * v + 1.0);
        for v in a2.iter_mut() {
            *v = *v * *v + 1.0;
        }
        assert!(approx_eq_slice(&a1, &a2, 1e-12));
        assert!((sum(&a1) - a2.iter().sum::<Scalar>()).abs() < 1e-6);
    }

    #[test]
    fn tiny_gemv_is_sequential_and_exact() {
        // Regression: `gemv` was the only element-wise-guarded kernel
        // missing the MIN_PARALLEL_LEN check, forking threads for
        // MLP-sized (~100-row) products. A tiny gemv must now match
        // seq::gemv bitwise without submitting any pool work.
        let a = Matrix::from_fn(100, 37, |i, j| ((i * 7 + j * 3) % 11) as Scalar - 5.0);
        let x: Vec<Scalar> = (0..37).map(|i| (i % 5) as Scalar * 0.5 - 1.0).collect();
        let mut got = vec![0.0; 100];
        let mut expect = vec![0.0; 100];
        let stats = pool::PoolStats::new();
        pool::with_stats(&stats, || pool::with_threads(4, || gemv(&a, &x, &mut got)));
        seq::gemv(&a, &x, &mut expect);
        assert_eq!(got, expect, "guarded gemv must be exactly the sequential kernel");
        assert_eq!(stats.submissions(), 0, "tiny gemv must not dispatch to the pool");
    }

    #[test]
    fn gemv_t_partial_count_never_exceeds_the_scatter_cap() {
        // Regression: `(len / t).max(1)` yields up to `t + 1` chunks
        // (len 9, t 8 -> nine partials), violating MAX_SCATTER_PARTIALS.
        let a = Matrix::from_fn(9, 4, |i, j| (i * 4 + j) as Scalar);
        let x: Vec<Scalar> = (0..9).map(|i| i as Scalar).collect();
        let mut got = vec![0.0; 4];
        let stats = pool::PoolStats::new();
        pool::with_stats(&stats, || {
            pool::with_threads(MAX_SCATTER_PARTIALS, || gemv_t(&a, &x, &mut got))
        });
        assert!(
            stats.max_tasks() <= MAX_SCATTER_PARTIALS,
            "{} partials exceed the cap of {MAX_SCATTER_PARTIALS}",
            stats.max_tasks()
        );
        // div_ceil(9, 8) = 2 -> five chunks, each a full-width partial.
        assert_eq!(stats.max_tasks(), 5);
        let mut expect = vec![0.0; 4];
        seq::gemv_t(&a, &x, &mut expect);
        assert!(approx_eq_slice(&got, &expect, 1e-12));
    }

    #[test]
    fn tiny_spmv_is_sequential_and_exact() {
        // Regression: `spmv` parallelized with no dispatch floor at all —
        // the same bug PR 4 fixed in `gemv`. A tiny sparse matvec must now
        // match seq::spmv bitwise without submitting any pool work.
        let d = Matrix::from_fn(60, 40, |i, j| {
            if (i * 13 + j * 5) % 3 == 0 {
                ((i + j) % 7) as Scalar - 3.0
            } else {
                0.0
            }
        });
        let s = CsrMatrix::from_dense(&d);
        let x: Vec<Scalar> = (0..40).map(|i| (i % 9) as Scalar * 0.5 - 2.0).collect();
        let mut got = vec![0.0; 60];
        let mut expect = vec![0.0; 60];
        let stats = pool::PoolStats::new();
        pool::with_stats(&stats, || pool::with_threads(8, || spmv(&s, &x, &mut got)));
        seq::spmv(&s, &x, &mut expect);
        assert_eq!(got, expect, "guarded spmv must be exactly the sequential kernel");
        assert_eq!(stats.submissions(), 0, "tiny spmv must not dispatch to the pool");
    }

    #[test]
    fn spmv_above_the_work_floor_still_parallelizes() {
        // The floor is a flops proxy (total nnz), not a row count: a CSR
        // whose nnz clears MIN_PARALLEL_LEN must still submit pool work.
        let d = Matrix::from_fn(512, 24, |i, j| ((i * 3 + j) % 11) as Scalar - 5.0);
        let s = CsrMatrix::from_dense(&d);
        assert!(s.nnz() >= MIN_PARALLEL_LEN);
        let x: Vec<Scalar> = (0..24).map(|i| i as Scalar).collect();
        let mut got = vec![0.0; 512];
        let stats = pool::PoolStats::new();
        pool::with_stats(&stats, || pool::with_threads(4, || spmv(&s, &x, &mut got)));
        assert!(stats.submissions() > 0, "large spmv must still use the pool");
        let mut expect = vec![0.0; 512];
        seq::spmv(&s, &x, &mut expect);
        assert_eq!(got, expect, "row-granular chunking is order-preserving");
    }

    #[test]
    fn tiny_gemm_variants_stay_below_the_flops_floor() {
        // The gemm audit: rows alone cleared the old `len >= 2` gate, so a
        // 16x4 * 4x4 product (256 element-ops) submitted pool tasks. The
        // flops-based floor keeps it sequential even when the Backend-level
        // ViennaCL threshold is disabled (par_unconditional).
        let a = Matrix::from_fn(16, 4, |i, j| ((i + j) % 5) as Scalar - 2.0);
        let b = Matrix::from_fn(4, 4, |i, j| ((i * 3 + j) % 7) as Scalar);
        let stats = pool::PoolStats::new();
        pool::with_stats(&stats, || {
            pool::with_threads(8, || {
                let mut c = Matrix::zeros(16, 4);
                gemm(&a, &b, &mut c);
                let bt = Matrix::from_fn(4, 4, |i, j| b.at(j, i));
                let mut c_nt = Matrix::zeros(16, 4);
                gemm_nt(&a, &bt, &mut c_nt);
                let at = Matrix::from_fn(4, 16, |i, j| a.at(j, i));
                let mut c_tn = Matrix::zeros(16, 4);
                gemm_tn(&at, &b, &mut c_tn);
            })
        });
        assert_eq!(stats.submissions(), 0, "sub-floor gemm variants must stay sequential");
    }

    #[test]
    fn gemm_variants_match_seq_under_forced_width() {
        // 48 * (9 * 13) = 5616 element-ops: above the flops floor, so the
        // parallel path genuinely runs (asserted via stats below).
        pool::with_threads(3, || {
            let a = Matrix::from_fn(48, 9, |i, j| ((i * 5 + j) % 9) as Scalar - 4.0);
            let b = Matrix::from_fn(9, 13, |i, j| ((i + j * 3) % 7) as Scalar - 3.0);
            let mut got = Matrix::zeros(48, 13);
            let mut expect = Matrix::zeros(48, 13);
            let stats = pool::PoolStats::new();
            pool::with_stats(&stats, || gemm(&a, &b, &mut got));
            assert!(stats.submissions() > 0, "above-floor gemm must parallelize");
            seq::gemm(&a, &b, &mut expect);
            assert!(approx_eq_slice(got.as_slice(), expect.as_slice(), 1e-9));

            let bt = Matrix::from_fn(13, 9, |i, j| b.at(j, i));
            let mut got_nt = Matrix::zeros(48, 13);
            gemm_nt(&a, &bt, &mut got_nt);
            assert!(approx_eq_slice(got_nt.as_slice(), expect.as_slice(), 1e-9));

            let at = Matrix::from_fn(9, 48, |i, j| a.at(j, i));
            let mut got_tn = Matrix::zeros(48, 13);
            gemm_tn(&at, &b, &mut got_tn);
            assert!(approx_eq_slice(got_tn.as_slice(), expect.as_slice(), 1e-9));
        });
    }
}
