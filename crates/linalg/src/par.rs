//! Rayon-parallel implementations of the primitives.
//!
//! All kernels run on the *current* rayon thread pool so the study harness
//! can control the degree of parallelism by installing a pool of the
//! desired size (the paper varies CPU thread counts the same way through
//! OpenMP).

use rayon::prelude::*;

use crate::{seq, CsrMatrix, Matrix, Scalar};

/// Below this many elements a parallel element-wise kernel is not worth the
/// fork-join overhead and we fall back to the sequential implementation.
/// ViennaCL's OpenMP backend has the same kind of guard.
const MIN_PARALLEL_LEN: usize = 4096;

pub(crate) fn dot(x: &[Scalar], y: &[Scalar]) -> Scalar {
    if x.len() < MIN_PARALLEL_LEN {
        return seq::dot(x, y);
    }
    x.par_iter().zip(y.par_iter()).map(|(&a, &b)| a * b).sum()
}

pub(crate) fn axpy(a: Scalar, x: &[Scalar], y: &mut [Scalar]) {
    if x.len() < MIN_PARALLEL_LEN {
        return seq::axpy(a, x, y);
    }
    y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, &xi)| *yi += a * xi);
}

pub(crate) fn scale(a: Scalar, x: &mut [Scalar]) {
    if x.len() < MIN_PARALLEL_LEN {
        return seq::scale(a, x);
    }
    x.par_iter_mut().for_each(|v| *v *= a);
}

pub(crate) fn sum(x: &[Scalar]) -> Scalar {
    if x.len() < MIN_PARALLEL_LEN {
        return x.iter().sum();
    }
    x.par_iter().sum()
}

pub(crate) fn map_inplace<F>(x: &mut [Scalar], f: F)
where
    F: Fn(Scalar) -> Scalar + Sync + Send,
{
    if x.len() < MIN_PARALLEL_LEN {
        for v in x.iter_mut() {
            *v = f(*v);
        }
        return;
    }
    x.par_iter_mut().for_each(|v| *v = f(*v));
}

pub(crate) fn zip_map<F>(a: &[Scalar], b: &[Scalar], out: &mut [Scalar], f: F)
where
    F: Fn(Scalar, Scalar) -> Scalar + Sync + Send,
{
    if a.len() < MIN_PARALLEL_LEN {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = f(x, y);
        }
        return;
    }
    out.par_iter_mut()
        .zip(a.par_iter())
        .zip(b.par_iter())
        .for_each(|((o, &x), &y)| *o = f(x, y));
}

pub(crate) fn gemv(a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
    y.par_iter_mut().enumerate().for_each(|(i, yi)| *yi = seq::dot(a.row(i), x));
}

/// Scatter reductions materialize one dense partial per chunk; capping the
/// chunk count bounds that memory traffic when the output is very wide
/// (news: 1.35 M columns), like a two-level tree reduction would.
const MAX_SCATTER_PARTIALS: usize = 8;

pub(crate) fn gemv_t(a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
    // Scatter along rows races on y; accumulate per-chunk partials and add.
    let cols = a.cols();
    let chunk = (x.len() / rayon::current_num_threads().clamp(1, MAX_SCATTER_PARTIALS)).max(1);
    let partials: Vec<Vec<Scalar>> = x
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, xs)| {
            let base = ci * chunk;
            let mut acc = vec![0.0; cols];
            for (off, &xi) in xs.iter().enumerate() {
                seq::axpy(xi, a.row(base + off), &mut acc);
            }
            acc
        })
        .collect();
    y.fill(0.0);
    for p in partials {
        seq::axpy(1.0, &p, y);
    }
}

pub(crate) fn gemm(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (k, m) = (a.cols(), b.cols());
    c.as_mut_slice()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(i, c_row)| {
            c_row.fill(0.0);
            let a_row = a.row(i);
            for (p, &aip) in a_row.iter().enumerate().take(k) {
                if aip == 0.0 {
                    continue;
                }
                seq::axpy(aip, b.row(p), c_row);
            }
        });
}

pub(crate) fn gemm_nt(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let m = b.rows();
    c.as_mut_slice()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(i, c_row)| {
            let a_row = a.row(i);
            for (j, cij) in c_row.iter_mut().enumerate() {
                *cij = seq::dot(a_row, b.row(j));
            }
        });
}

pub(crate) fn gemm_tn(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    // Parallelize over rows of C = A^T B: row i of C gathers column i of A
    // against all rows of B.
    let m = b.cols();
    c.as_mut_slice()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(i, c_row)| {
            c_row.fill(0.0);
            for p in 0..a.rows() {
                let api = a.at(p, i);
                if api != 0.0 {
                    seq::axpy(api, b.row(p), c_row);
                }
            }
        });
}

pub(crate) fn spmv(a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
    y.par_iter_mut().enumerate().for_each(|(i, yi)| *yi = a.row(i).dot(x));
}

pub(crate) fn spmv_t(a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
    let cols = a.cols();
    let chunk = (x.len() / rayon::current_num_threads().clamp(1, MAX_SCATTER_PARTIALS)).max(1);
    let partials: Vec<Vec<Scalar>> = x
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, xs)| {
            let base = ci * chunk;
            let mut acc = vec![0.0; cols];
            for (off, &xi) in xs.iter().enumerate() {
                if xi != 0.0 {
                    a.row(base + off).axpy_into(xi, &mut acc);
                }
            }
            acc
        })
        .collect();
    y.fill(0.0);
    for p in partials {
        seq::axpy(1.0, &p, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;

    #[test]
    fn large_dot_crosses_parallel_threshold() {
        let x: Vec<Scalar> = (0..MIN_PARALLEL_LEN * 2).map(|i| (i % 13) as Scalar).collect();
        let y: Vec<Scalar> = (0..MIN_PARALLEL_LEN * 2).map(|i| (i % 7) as Scalar).collect();
        let expect = seq::dot(&x, &y);
        assert!((dot(&x, &y) - expect).abs() <= 1e-9 * expect.abs());
    }

    #[test]
    fn gemv_t_partials_reduce_correctly() {
        let a = Matrix::from_fn(97, 11, |i, j| ((i * 31 + j * 7) % 5) as Scalar - 2.0);
        let x: Vec<Scalar> = (0..97).map(|i| (i % 3) as Scalar).collect();
        let mut got = vec![0.0; 11];
        let mut expect = vec![0.0; 11];
        gemv_t(&a, &x, &mut got);
        seq::gemv_t(&a, &x, &mut expect);
        assert!(approx_eq_slice(&got, &expect, 1e-9));
    }

    #[test]
    fn spmv_t_partials_reduce_correctly() {
        let d = Matrix::from_fn(53, 17, |i, j| if (i + j) % 4 == 0 { (i + j) as Scalar } else { 0.0 });
        let s = CsrMatrix::from_dense(&d);
        let x: Vec<Scalar> = (0..53).map(|i| (i % 5) as Scalar - 2.0).collect();
        let mut got = vec![0.0; 17];
        let mut expect = vec![0.0; 17];
        spmv_t(&s, &x, &mut got);
        seq::spmv_t(&s, &x, &mut expect);
        assert!(approx_eq_slice(&got, &expect, 1e-9));
    }

    #[test]
    fn large_elementwise_kernels_match_seq() {
        let n = MIN_PARALLEL_LEN * 2 + 17;
        let x: Vec<Scalar> = (0..n).map(|i| (i % 19) as Scalar * 0.25).collect();
        let mut y1: Vec<Scalar> = (0..n).map(|i| (i % 5) as Scalar).collect();
        let mut y2 = y1.clone();
        axpy(1.5, &x, &mut y1);
        seq::axpy(1.5, &x, &mut y2);
        assert!(approx_eq_slice(&y1, &y2, 1e-12));

        let mut a1 = x.clone();
        let mut a2 = x.clone();
        map_inplace(&mut a1, |v| v * v + 1.0);
        for v in a2.iter_mut() {
            *v = *v * *v + 1.0;
        }
        assert!(approx_eq_slice(&a1, &a2, 1e-12));
        assert!((sum(&a1) - a2.iter().sum::<Scalar>()).abs() < 1e-6);
    }
}
