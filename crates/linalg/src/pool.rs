//! Thread-count control for the parallel backend.
//!
//! The original harness installed a rayon pool of the desired width; with
//! the workspace's std-only parallel backend the width is instead a
//! thread-local ambient value read by every `par` kernel, and the kernels
//! fork-join scoped `std::thread`s per call. [`with_threads`] is the
//! study's equivalent of setting `OMP_NUM_THREADS`.

use std::cell::Cell;
use std::thread::available_parallelism;

thread_local! {
    static AMBIENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Degree of parallelism the `par` kernels use on this thread. Defaults to
/// the machine's available parallelism outside any [`with_threads`] scope.
pub fn current_num_threads() -> usize {
    let n = AMBIENT_THREADS.with(Cell::get);
    if n == 0 {
        available_parallelism().map_or(1, usize::from)
    } else {
        n
    }
}

/// Runs `f` with the parallel kernels limited to `n` threads (clamped to at
/// least one). Nested calls see the innermost width; the previous width is
/// restored on exit, including on unwind.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_THREADS.with(|t| t.set(self.0));
        }
    }
    let _restore = Restore(AMBIENT_THREADS.with(|t| t.replace(n.max(1))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_width_is_scoped_and_clamped() {
        let outside = current_num_threads();
        assert!(outside >= 1);
        with_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_threads(0, || assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn width_does_not_leak_to_spawned_threads() {
        with_threads(5, || {
            let inner = std::thread::scope(|s| s.spawn(current_num_threads).join().unwrap());
            // Worker threads fall back to the default, not the caller's 5.
            assert_ne!(inner, 0);
        });
    }
}
