//! The persistent worker pool and thread-count control for the parallel
//! backend.
//!
//! The original harness installed a rayon pool of the desired width; with
//! the workspace's std-only parallel backend the width is a thread-local
//! ambient value read by every `par` kernel. [`with_threads`] is the
//! study's equivalent of setting `OMP_NUM_THREADS`.
//!
//! Kernels used to fork-join scoped `std::thread`s on *every* call, so
//! fork-join overhead — not memory bandwidth — dominated time-per-epoch
//! at small batch sizes, and worker threads started with a fresh
//! thread-local width, silently falling back to machine width when a
//! runner's worker invoked a `par` kernel (oversubscription). Both
//! problems are fixed here:
//!
//! * [`run`] hands tasks to a process-wide pool of parked workers
//!   (condvar handoff, no thread creation on the hot path);
//! * every task **inherits the submitting scope's ambient context**
//!   (width and instrumentation), so nested kernels respect
//!   [`with_threads`] no matter which thread executes them;
//! * a panicking task is caught, the remaining tasks still run, and the
//!   panic resumes on the submitting thread once the whole submission has
//!   drained — workers survive and nothing deadlocks.
//!
//! Determinism note: chunk *assignment* is decided by the caller from the
//! requested width before submission, and results are keyed by task
//! index, never by executing thread — so results are bit-identical across
//! pool sizes, scheduling orders, and the legacy fork-join baseline
//! (available via [`with_dispatch`] for the `BENCH_pool.json` A/B).

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::available_parallelism;

use crate::simd::KernelTier;

thread_local! {
    /// Requested kernel width; 0 means "machine width" (no scope active).
    static AMBIENT_THREADS: Cell<usize> = const { Cell::new(0) };
    /// Instrumentation sink installed by [`with_stats`], if any.
    static AMBIENT_STATS: RefCell<Option<Arc<PoolStats>>> = const { RefCell::new(None) };
    /// Execution strategy for [`run`] on this thread.
    static AMBIENT_DISPATCH: Cell<Dispatch> = const { Cell::new(Dispatch::Pool) };
    /// Kernel tier the linalg primitives dispatch to on this thread.
    static AMBIENT_TIER: Cell<KernelTier> = const { Cell::new(KernelTier::Scalar) };
}

/// Degree of parallelism the `par` kernels use on this thread. Defaults to
/// the machine's available parallelism outside any [`with_threads`] scope.
pub fn current_num_threads() -> usize {
    let n = AMBIENT_THREADS.with(Cell::get);
    if n == 0 {
        available_parallelism().map_or(1, usize::from)
    } else {
        n
    }
}

/// Runs `f` with the parallel kernels limited to `n` threads (clamped to at
/// least one). Nested calls see the innermost width; the previous width is
/// restored on exit, including on unwind. Pool tasks submitted inside the
/// scope inherit this width, so kernels keep honoring it even when they
/// execute on a pool worker thread.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_THREADS.with(|t| t.set(self.0));
        }
    }
    let _restore = Restore(AMBIENT_THREADS.with(|t| t.replace(n.max(1))));
    f()
}

/// The [`KernelTier`] the linalg primitives dispatch to on this thread.
/// Defaults to [`KernelTier::Scalar`] outside any [`with_tier`] scope, so
/// trajectories recorded before the SIMD tier existed stay bit-identical.
pub fn current_tier() -> KernelTier {
    AMBIENT_TIER.with(Cell::get)
}

/// Runs `f` with the linalg primitives dispatching to `tier`. Scoped and
/// restored on unwind like [`with_threads`]; pool tasks submitted inside
/// the scope inherit the tier, so chunked `par` kernels keep using it no
/// matter which worker thread executes a chunk.
pub fn with_tier<R>(tier: KernelTier, f: impl FnOnce() -> R) -> R {
    struct Restore(KernelTier);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_TIER.with(|t| t.set(self.0));
        }
    }
    let _restore = Restore(AMBIENT_TIER.with(|t| t.replace(tier)));
    f()
}

/// How [`run`] executes its tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dispatch {
    /// Hand tasks to the persistent worker pool (the default).
    Pool,
    /// Spawn fresh scoped threads per call: the pre-pool behaviour, kept
    /// as the measured baseline for the pool bench. Fork-join workers do
    /// *not* inherit the ambient width — reproducing the legacy
    /// width-propagation bug is part of what the bench quantifies.
    ForkJoin,
}

/// The execution strategy [`run`] would use on this thread.
pub fn current_dispatch() -> Dispatch {
    AMBIENT_DISPATCH.with(Cell::get)
}

/// Runs `f` with [`run`] executing via `dispatch`; scoped and restored on
/// unwind like [`with_threads`].
pub fn with_dispatch<R>(dispatch: Dispatch, f: impl FnOnce() -> R) -> R {
    struct Restore(Dispatch);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_DISPATCH.with(|d| d.set(self.0));
        }
    }
    let _restore = Restore(AMBIENT_DISPATCH.with(|d| d.replace(dispatch)));
    f()
}

/// Locks a pool mutex. The pool never panics while holding its own locks,
/// so poisoning cannot arise from pool code; if user code somehow poisons
/// one, the plain counters/queues inside are still consistent, so continue
/// with the data rather than spreading the panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Instrumentation counters for pool submissions, installed for a scope
/// with [`with_stats`] and inherited by pool tasks like the width is.
/// Mutex-backed rather than atomic: the workspace confines atomic RMW to
/// `SharedModel`, and these counters are far off any hot path.
#[derive(Debug, Default)]
pub struct PoolStats {
    inner: Mutex<StatsInner>,
}

#[derive(Clone, Copy, Debug, Default)]
struct StatsInner {
    submissions: u64,
    max_width: usize,
    max_tasks: usize,
}

impl PoolStats {
    /// A fresh counter set, ready to share with [`with_stats`].
    pub fn new() -> Arc<PoolStats> {
        Arc::default()
    }

    /// Number of [`run`] submissions observed (including inline
    /// single-task ones).
    pub fn submissions(&self) -> u64 {
        lock(&self.inner).submissions
    }

    /// Largest ambient width ([`current_num_threads`]) seen at submission.
    pub fn max_width(&self) -> usize {
        lock(&self.inner).max_width
    }

    /// Largest task count seen in a single submission.
    pub fn max_tasks(&self) -> usize {
        lock(&self.inner).max_tasks
    }

    fn record(&self, width: usize, tasks: usize) {
        let mut s = lock(&self.inner);
        s.submissions += 1;
        s.max_width = s.max_width.max(width);
        s.max_tasks = s.max_tasks.max(tasks);
    }
}

/// Runs `f` with `stats` recording every [`run`] submission in the scope,
/// including submissions made from inside pool tasks spawned by the scope.
pub fn with_stats<R>(stats: &Arc<PoolStats>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<PoolStats>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_STATS.with(|s| *s.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(AMBIENT_STATS.with(|s| s.replace(Some(Arc::clone(stats)))));
    f()
}

/// Completion latch for one submission: counts tasks down and carries the
/// first panic payload back to the submitter.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Arc<Latch> {
        Arc::new(Latch {
            state: Mutex::new(LatchState { remaining: count, panic: None }),
            done: Condvar::new(),
        })
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut s = lock(&self.state);
        s.remaining -= 1;
        if s.panic.is_none() {
            s.panic = panic;
        }
        if s.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut s = lock(&self.state);
        while s.remaining > 0 {
            s = match self.done.wait(s) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        s.panic.take()
    }
}

/// One queued unit of work: a type-erased pointer to the submission's
/// closure plus the ambient context captured at submission time.
struct Task {
    /// Valid until the submission's latch trips (see SAFETY in [`run`]).
    closure: *const (dyn Fn(usize) + Sync),
    index: usize,
    width: usize,
    tier: KernelTier,
    stats: Option<Arc<PoolStats>>,
    latch: Arc<Latch>,
}

// SAFETY: the raw closure pointer crosses threads, but `run` blocks until
// the latch has tripped for every task of its submission, and each task
// trips the latch strictly after its last access to the closure — so the
// pointee outlives every dereference. The pointee is `Sync`, so shared
// concurrent calls are allowed.
unsafe impl Send for Task {}

struct PoolShared {
    queue: Mutex<VecDeque<Task>>,
    work: Condvar,
}

/// The process-wide pool, created on first use. Workers are parked in
/// `worker_loop` for the life of the process; their count follows machine
/// parallelism (at least two, so pool handoff is exercised even on
/// single-core CI machines). Determinism never depends on this number:
/// chunk assignment is fixed by the requested width before submission.
fn pool() -> &'static PoolShared {
    static POOL: OnceLock<&'static PoolShared> = OnceLock::new();
    POOL.get_or_init(|| {
        // analyzer: allow(hot-path-alloc) -- one-time pool construction behind OnceLock, never on the per-task path
        let shared: &'static PoolShared = Box::leak(Box::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
        }));
        let workers = available_parallelism().map_or(1, usize::from).max(2);
        for i in 0..workers {
            // A failed spawn only shrinks the pool: submitters execute
            // their own tasks too, so progress never depends on workers.
            let _ = std::thread::Builder::new()
                // analyzer: allow(hot-path-alloc) -- thread names are built once at pool spawn, never on the per-task path
                .name(format!("sgd-pool-{i}"))
                .spawn(move || worker_loop(shared));
        }
        shared
    })
}

fn worker_loop(shared: &'static PoolShared) {
    loop {
        let task = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = match shared.work.wait(q) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        execute(task);
    }
}

/// Restores the executing thread's ambient context when a task finishes,
/// even if the task panics.
struct InstallCtx {
    prev_width: usize,
    prev_tier: KernelTier,
    prev_stats: Option<Arc<PoolStats>>,
}

impl InstallCtx {
    fn install(width: usize, tier: KernelTier, stats: Option<Arc<PoolStats>>) -> InstallCtx {
        InstallCtx {
            prev_width: AMBIENT_THREADS.with(|t| t.replace(width)),
            prev_tier: AMBIENT_TIER.with(|t| t.replace(tier)),
            prev_stats: AMBIENT_STATS.with(|s| s.replace(stats)),
        }
    }
}

impl Drop for InstallCtx {
    fn drop(&mut self) {
        AMBIENT_THREADS.with(|t| t.set(self.prev_width));
        AMBIENT_TIER.with(|t| t.set(self.prev_tier));
        AMBIENT_STATS.with(|s| *s.borrow_mut() = self.prev_stats.take());
    }
}

fn execute(task: Task) {
    // analyzer: allow(hot-path-alloc) -- Option<Arc> clone is a refcount bump, no heap allocation
    let _ctx = InstallCtx::install(task.width, task.tier, task.stats.clone());
    // SAFETY: see `unsafe impl Send for Task` — the pointee stays alive
    // until the latch trips, which happens strictly after this call.
    let closure = unsafe { &*task.closure };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| closure(task.index)));
    task.latch.complete(result.err());
}

/// Records a submission into the ambient stats sink, if one is installed.
fn record(tasks: usize) {
    AMBIENT_STATS.with(|s| {
        if let Some(stats) = s.borrow().as_ref() {
            stats.record(current_num_threads(), tasks);
        }
    });
}

/// Executes `f(0)`, `f(1)`, …, `f(tasks - 1)` concurrently and returns
/// once all have finished. This is the single entry point all `par`
/// kernels and runner epochs go through.
///
/// * Tasks inherit the submitter's ambient width and stats sink.
/// * The submitting thread participates: it executes tasks of its own
///   submission while waiting, so nested `run` calls from inside a pool
///   task always make progress even when every worker is busy.
/// * If any task panics, the remaining tasks still run, the pool workers
///   survive, and the first panic resumes on the submitting thread.
pub fn run<F>(tasks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    match tasks {
        0 => return,
        1 => {
            record(1);
            f(0);
            return;
        }
        _ => {}
    }
    record(tasks);
    if current_dispatch() == Dispatch::ForkJoin {
        return fork_join(tasks, &f);
    }
    let shared = pool();
    let latch = Latch::new(tasks);
    let width = AMBIENT_THREADS.with(Cell::get);
    let tier = AMBIENT_TIER.with(Cell::get);
    // analyzer: allow(hot-path-alloc) -- Option<Arc> clone is a refcount bump, no heap allocation
    let stats = AMBIENT_STATS.with(|s| s.borrow().clone());
    // SAFETY (lifetime erasure): `run` does not return before
    // `latch.wait()` observes all `tasks` completions, so `f` strictly
    // outlives every dereference of this pointer.
    let local: &(dyn Fn(usize) + Sync) = &f;
    let closure: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(local)
    };
    {
        let mut q = lock(&shared.queue);
        for index in 0..tasks {
            q.push_back(Task {
                closure,
                index,
                width,
                tier,
                // analyzer: allow(hot-path-alloc) -- Option<Arc> clone is a refcount bump, no heap allocation
                stats: stats.clone(),
                latch: Arc::clone(&latch),
            });
        }
    }
    shared.work.notify_all();
    // Help drain this submission's own tasks (identified by latch), never
    // someone else's — a nested submitter must not block its parent's
    // completion on unrelated long-running work.
    loop {
        let own = {
            let mut q = lock(&shared.queue);
            match q.iter().position(|t| Arc::ptr_eq(&t.latch, &latch)) {
                Some(i) => q.remove(i),
                None => None,
            }
        };
        match own {
            Some(task) => execute(task),
            None => break,
        }
    }
    if let Some(payload) = latch.wait() {
        std::panic::resume_unwind(payload);
    }
}

/// The pre-pool execution strategy: one scoped OS thread per task, spawned
/// and joined on every call. Kept (confined to this module — the analyzer
/// bans thread creation elsewhere) as the measured baseline so the pool
/// bench can quantify both the handoff overhead and the width-inheritance
/// fix. The dispatch *mode* propagates into the scoped workers so nested
/// kernels stay on the baseline path, but the width deliberately does not:
/// that is the legacy bug under measurement. The kernel *tier* does
/// propagate: it postdates the legacy dispatch, so there is no legacy
/// behaviour to preserve, and inheriting it keeps pool and fork-join
/// results bit-identical under any tier (see `pool_bit_identity.rs`).
fn fork_join<F>(tasks: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    let tier = AMBIENT_TIER.with(Cell::get);
    std::thread::scope(|s| {
        for index in 0..tasks {
            s.spawn(move || with_dispatch(Dispatch::ForkJoin, || with_tier(tier, || f(index))));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_width_is_scoped_and_clamped() {
        let outside = current_num_threads();
        assert!(outside >= 1);
        with_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_threads(0, || assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn width_is_inherited_by_pool_workers() {
        // The pre-pool backend leaked machine width into worker threads
        // (the oversubscription bug); pool tasks now inherit the
        // installing scope's width no matter which thread runs them.
        with_threads(5, || {
            let seen = Mutex::new(Vec::new());
            run(4, |_| seen.lock().unwrap().push(current_num_threads()));
            let seen = seen.into_inner().unwrap();
            assert_eq!(seen.len(), 4);
            assert!(seen.iter().all(|&w| w == 5), "widths not inherited: {seen:?}");
        });
    }

    #[test]
    fn fork_join_baseline_does_not_inherit_width() {
        // The legacy dispatch keeps the legacy semantics: fresh scoped
        // threads start at machine width regardless of the caller's scope.
        let machine = available_parallelism().map_or(1, usize::from);
        with_dispatch(Dispatch::ForkJoin, || {
            with_threads(machine + 7, || {
                let seen = Mutex::new(Vec::new());
                run(2, |_| seen.lock().unwrap().push(current_num_threads()));
                for w in seen.into_inner().unwrap() {
                    assert_eq!(w, machine, "fork-join workers must see machine width");
                }
            });
        });
    }

    #[test]
    fn run_executes_every_index_exactly_once() {
        let hits = Mutex::new(vec![0u32; 9]);
        run(9, |i| hits.lock().unwrap()[i] += 1);
        assert_eq!(*hits.lock().unwrap(), vec![1; 9]);
    }

    #[test]
    fn panics_propagate_and_the_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            run(4, |i| {
                if i == 2 {
                    panic!("injected task failure");
                }
            });
        });
        assert!(caught.is_err(), "worker panic must reach the submitter");
        // No deadlock, no dead workers: the pool keeps serving.
        let done = Mutex::new(0usize);
        run(3, |_| *done.lock().unwrap() += 1);
        assert_eq!(*done.lock().unwrap(), 3);
    }

    #[test]
    fn nested_submissions_complete() {
        let total = Mutex::new(0usize);
        run(3, |_| run(3, |_| *total.lock().unwrap() += 1));
        assert_eq!(*total.lock().unwrap(), 9);
    }

    #[test]
    fn stats_observe_width_and_tasks_and_stay_scoped() {
        let stats = PoolStats::new();
        with_stats(&stats, || with_threads(3, || run(5, |_| {})));
        assert_eq!(stats.submissions(), 1);
        assert_eq!(stats.max_width(), 3);
        assert_eq!(stats.max_tasks(), 5);
        // Outside the scope nothing is recorded.
        run(2, |_| {});
        assert_eq!(stats.submissions(), 1);
    }

    #[test]
    fn stats_are_inherited_by_pool_tasks() {
        let stats = PoolStats::new();
        with_stats(&stats, || with_threads(2, || run(2, |_| run(2, |_| {}))));
        // One outer submission plus one nested submission per outer task,
        // all observed at the installed width.
        assert_eq!(stats.submissions(), 3);
        assert_eq!(stats.max_width(), 2);
        assert_eq!(stats.max_tasks(), 2);
    }

    #[test]
    fn tier_is_scoped_and_inherited_by_pool_workers() {
        assert_eq!(current_tier(), KernelTier::Scalar);
        with_tier(KernelTier::Simd, || {
            assert_eq!(current_tier(), KernelTier::Simd);
            let seen = Mutex::new(Vec::new());
            run(4, |_| seen.lock().unwrap().push(current_tier()));
            let seen = seen.into_inner().unwrap();
            assert_eq!(seen.len(), 4);
            assert!(seen.iter().all(|&t| t == KernelTier::Simd), "tier not inherited: {seen:?}");
        });
        assert_eq!(current_tier(), KernelTier::Scalar);
    }

    #[test]
    fn tier_is_inherited_by_fork_join_workers() {
        // Unlike the width (whose non-inheritance reproduces the legacy
        // bug), the tier propagates into the baseline dispatch so the two
        // modes stay bit-identical under any tier.
        with_dispatch(Dispatch::ForkJoin, || {
            with_tier(KernelTier::SimdPortable, || {
                let seen = Mutex::new(Vec::new());
                run(2, |_| seen.lock().unwrap().push(current_tier()));
                for t in seen.into_inner().unwrap() {
                    assert_eq!(t, KernelTier::SimdPortable);
                }
            });
        });
    }

    #[test]
    fn dispatch_is_scoped_and_restored() {
        assert_eq!(current_dispatch(), Dispatch::Pool);
        with_dispatch(Dispatch::ForkJoin, || {
            assert_eq!(current_dispatch(), Dispatch::ForkJoin);
        });
        assert_eq!(current_dispatch(), Dispatch::Pool);
    }
}
