//! The explicitly vectorized kernel tier.
//!
//! Every kernel here exists in two implementations with *identical*
//! floating-point operation order:
//!
//! * an AVX2 `std::arch` version ([`mod@avx2`], x86_64 only, selected at
//!   runtime via `is_x86_feature_detected!`), and
//! * a portable fixed-lane fallback ([`mod@portable`]) whose scalar
//!   accumulator arrays mirror the vector registers lane for lane.
//!
//! Because both paths perform the same IEEE-754 multiplies and adds in
//! the same order (no FMA — `_mm256_fmadd_pd` would fuse the rounding
//! step the scalar path performs), the two are **bitwise equal on any
//! data**, so a feature-less runner and an AVX2 box produce identical
//! results. Against the scalar `seq` tier the usual pool discipline
//! applies (see `tests/pool_bit_identity.rs`):
//!
//! * order-preserving kernels (`axpy`, `scale`, `gemv_t`) perform the
//!   exact per-element operations of `seq` and are bitwise equal to it
//!   on any data;
//! * reductions (`dot`, `gemv`, `spmv`) accumulate in `LANES * UNROLL`
//!   fixed slots reduced by a pinned tree, which reassociates the sum —
//!   bitwise equal to `seq` on integer-valued data, run-to-run bitwise
//!   deterministic always.
//!
//! ## Reduction-order pinning
//!
//! A dot product over `n` elements runs `LANES * UNROLL = 8` independent
//! accumulators: slot `u * LANES + l` owns elements `i` with
//! `i % (LANES * UNROLL) == u * LANES + l` over the main body
//! (`n - n % 8` elements). The reduction is pinned as
//! `acc[u][l] -> a[l] = acc[0][l] + acc[1][l]` (one vector add), then
//! `(a[0] + a[1]) + (a[2] + a[3])`, then the remainder tail (up to 7
//! elements) is added left to right. Chunked `par` execution composes on
//! top: each chunk reduces with this tree, and chunk partials combine in
//! chunk order exactly as the scalar tier's partials do.
//!
//! The tier is selected per dispatch through the ambient
//! [`crate::pool::with_tier`] scope (propagated to pool workers like the
//! width), so `Backend::Seq`/`Backend::Par` chunking composes with any
//! tier.

use std::sync::OnceLock;

use crate::{pool, seq, CsrMatrix, CsrRow, Matrix, Scalar};

/// Which kernel implementations the linalg primitives dispatch to,
/// selected for a scope with [`crate::pool::with_tier`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelTier {
    /// The scalar reference loops (`seq`) — the bit-level ground truth
    /// and the default, so existing trajectories stay bit-identical.
    #[default]
    Scalar,
    /// Explicitly vectorized kernels: AVX2 when the CPU reports it,
    /// otherwise the portable fixed-lane fallback (same bits either way).
    Simd,
    /// Force the portable fixed-lane fallback even when AVX2 is present —
    /// the CI leg for feature-less runners and the A/B half of the
    /// "portable == AVX2 bitwise" tests.
    SimdPortable,
}

/// Vector width of one register: four `f64` lanes in AVX2's 256 bits.
pub const SIMD_LANES: usize = 4;

/// Independent accumulator registers per reduction.
const UNROLL: usize = 2;

/// Elements consumed per main-loop iteration.
const BLOCK: usize = SIMD_LANES * UNROLL;

/// Runtime AVX2 detection, probed once per process.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    false
}

/// The concrete implementation an ambient [`KernelTier`] resolves to on
/// this machine.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Resolved {
    Scalar,
    Portable,
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

fn resolve() -> Resolved {
    match pool::current_tier() {
        KernelTier::Scalar => Resolved::Scalar,
        KernelTier::SimdPortable => Resolved::Portable,
        KernelTier::Simd => {
            #[cfg(target_arch = "x86_64")]
            if avx2_available() {
                return Resolved::Avx2;
            }
            Resolved::Portable
        }
    }
}

/// Pinned reduction tree shared by both implementations: one lanewise
/// add folding the unrolled register pair, then a fixed pairwise tree.
#[inline]
fn reduce(acc0: [Scalar; SIMD_LANES], acc1: [Scalar; SIMD_LANES]) -> Scalar {
    let a = [acc0[0] + acc1[0], acc0[1] + acc1[1], acc0[2] + acc1[2], acc0[3] + acc1[3]];
    (a[0] + a[1]) + (a[2] + a[3])
}

/// Left-to-right scalar tail shared by both implementations; identical
/// to what `seq::dot` does over the same remainder.
#[inline]
fn tail_dot(x: &[Scalar], y: &[Scalar]) -> Scalar {
    let mut s = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        s += a * b;
    }
    s
}

/// Tail of a sparse row dot, left to right like `CsrRow::dot`.
#[inline]
fn tail_csr_dot(cols: &[u32], vals: &[Scalar], x: &[Scalar]) -> Scalar {
    let mut s = 0.0;
    for (&c, &v) in cols.iter().zip(vals) {
        s += v * x[c as usize];
    }
    s
}

/// Portable fixed-lane kernels: scalar code whose accumulator arrays
/// mirror the AVX2 registers lane for lane, so the two paths are bitwise
/// interchangeable on any data.
mod portable {
    use super::{reduce, tail_csr_dot, tail_dot, BLOCK, SIMD_LANES};
    use crate::{Matrix, Scalar};

    // analyzer: root(hot-path-alloc) -- vectorized reduction inner loop: per-example hot path, must not allocate
    pub(super) fn dot(x: &[Scalar], y: &[Scalar]) -> Scalar {
        let main = x.len() - x.len() % BLOCK;
        let mut acc0 = [0.0; SIMD_LANES];
        let mut acc1 = [0.0; SIMD_LANES];
        let mut b = 0;
        while b < main {
            for l in 0..SIMD_LANES {
                acc0[l] += x[b + l] * y[b + l];
                acc1[l] += x[b + SIMD_LANES + l] * y[b + SIMD_LANES + l];
            }
            b += BLOCK;
        }
        reduce(acc0, acc1) + tail_dot(&x[main..], &y[main..])
    }

    // analyzer: root(hot-path-alloc) -- vectorized elementwise inner loop: per-example hot path, must not allocate
    pub(super) fn axpy(a: Scalar, x: &[Scalar], y: &mut [Scalar]) {
        // Element-wise: every lane owns one element and performs exactly
        // the scalar tier's `y[i] += a * x[i]`, so all tiers are bitwise
        // equal on any data. The blocked structure exists only to mirror
        // the AVX2 path's iteration shape.
        let main = x.len() - x.len() % BLOCK;
        let mut b = 0;
        while b < main {
            for l in 0..BLOCK {
                y[b + l] += a * x[b + l];
            }
            b += BLOCK;
        }
        for (yi, &xi) in y[main..].iter_mut().zip(&x[main..]) {
            *yi += a * xi;
        }
    }

    // analyzer: root(hot-path-alloc) -- vectorized elementwise inner loop: per-example hot path, must not allocate
    pub(super) fn scale(a: Scalar, x: &mut [Scalar]) {
        for v in x.iter_mut() {
            *v *= a;
        }
    }

    // analyzer: root(hot-path-alloc) -- vectorized matrix-vector inner loop: per-example hot path, must not allocate
    pub(super) fn gemv(a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = dot(a.row(i), x);
        }
    }

    // analyzer: root(hot-path-alloc) -- vectorized scatter inner loop: per-example hot path, must not allocate
    pub(super) fn gemv_t(a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            axpy(xi, a.row(i), y);
        }
    }

    // analyzer: root(hot-path-alloc) -- vectorized sparse dot inner loop: per-example hot path, must not allocate
    pub(super) fn csr_dot(cols: &[u32], vals: &[Scalar], x: &[Scalar]) -> Scalar {
        let main = vals.len() - vals.len() % BLOCK;
        let mut acc0 = [0.0; SIMD_LANES];
        let mut acc1 = [0.0; SIMD_LANES];
        let mut b = 0;
        while b < main {
            for l in 0..SIMD_LANES {
                acc0[l] += vals[b + l] * x[cols[b + l] as usize];
                acc1[l] += vals[b + SIMD_LANES + l] * x[cols[b + SIMD_LANES + l] as usize];
            }
            b += BLOCK;
        }
        reduce(acc0, acc1) + tail_csr_dot(&cols[main..], &vals[main..], x)
    }
}

/// AVX2 kernels. Every function carries `#[target_feature(enable =
/// "avx2")]` and is only reached after `is_x86_feature_detected!`
/// confirmed the feature (see [`resolve`]), which is the safety
/// precondition for calling them. No FMA: fused multiply-add rounds
/// once where the scalar tier rounds twice, which would break bitwise
/// equality with `portable` and `seq`.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m128i, _mm256_add_pd, _mm256_i32gather_pd, _mm256_loadu_pd, _mm256_mul_pd,
        _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm_loadu_si128,
    };

    use super::{reduce, tail_csr_dot, tail_dot, BLOCK, SIMD_LANES};
    use crate::{Matrix, Scalar};

    // analyzer: root(hot-path-alloc) -- vectorized reduction inner loop: per-example hot path, must not allocate
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot(x: &[Scalar], y: &[Scalar]) -> Scalar {
        let main = x.len() - x.len() % BLOCK;
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        // Pointers feed the unaligned load intrinsics immediately and are
        // never stored, compared, or used as keys.
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut b = 0;
        while b < main {
            let prod0 = _mm256_mul_pd(_mm256_loadu_pd(xp.add(b)), _mm256_loadu_pd(yp.add(b)));
            let prod1 = _mm256_mul_pd(
                _mm256_loadu_pd(xp.add(b + SIMD_LANES)),
                _mm256_loadu_pd(yp.add(b + SIMD_LANES)),
            );
            acc0 = _mm256_add_pd(acc0, prod0);
            acc1 = _mm256_add_pd(acc1, prod1);
            b += BLOCK;
        }
        let mut a0 = [0.0; SIMD_LANES];
        let mut a1 = [0.0; SIMD_LANES];
        _mm256_storeu_pd(a0.as_mut_ptr(), acc0);
        _mm256_storeu_pd(a1.as_mut_ptr(), acc1);
        reduce(a0, a1) + tail_dot(&x[main..], &y[main..])
    }

    // analyzer: root(hot-path-alloc) -- vectorized elementwise inner loop: per-example hot path, must not allocate
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy(a: Scalar, x: &[Scalar], y: &mut [Scalar]) {
        let main = x.len() - x.len() % BLOCK;
        let av = _mm256_set1_pd(a);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut b = 0;
        while b < main {
            let y0 = _mm256_add_pd(
                _mm256_loadu_pd(yp.add(b)),
                _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(b))),
            );
            let y1 = _mm256_add_pd(
                _mm256_loadu_pd(yp.add(b + SIMD_LANES)),
                _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(b + SIMD_LANES))),
            );
            _mm256_storeu_pd(yp.add(b), y0);
            _mm256_storeu_pd(yp.add(b + SIMD_LANES), y1);
            b += BLOCK;
        }
        for (yi, &xi) in y[main..].iter_mut().zip(&x[main..]) {
            *yi += a * xi;
        }
    }

    // analyzer: root(hot-path-alloc) -- vectorized elementwise inner loop: per-example hot path, must not allocate
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale(a: Scalar, x: &mut [Scalar]) {
        let main = x.len() - x.len() % BLOCK;
        let av = _mm256_set1_pd(a);
        let xp = x.as_mut_ptr();
        let mut b = 0;
        while b < main {
            _mm256_storeu_pd(xp.add(b), _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(b))));
            _mm256_storeu_pd(
                xp.add(b + SIMD_LANES),
                _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(b + SIMD_LANES))),
            );
            b += BLOCK;
        }
        for v in x[main..].iter_mut() {
            *v *= a;
        }
    }

    // analyzer: root(hot-path-alloc) -- vectorized matrix-vector inner loop: per-example hot path, must not allocate
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemv(a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = dot(a.row(i), x);
        }
    }

    // analyzer: root(hot-path-alloc) -- vectorized scatter inner loop: per-example hot path, must not allocate
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemv_t(a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            axpy(xi, a.row(i), y);
        }
    }

    // analyzer: root(hot-path-alloc) -- vectorized sparse dot inner loop: per-example hot path, must not allocate
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn csr_dot(cols: &[u32], vals: &[Scalar], x: &[Scalar]) -> Scalar {
        let main = vals.len() - vals.len() % BLOCK;
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let xp = x.as_ptr();
        let cp = cols.as_ptr();
        let vp = vals.as_ptr();
        let mut b = 0;
        while b < main {
            // The caller guarantees every index fits in i32 (see
            // `fits_gather`), so reinterpreting four u32 as i32 gather
            // offsets is value-preserving. Scale 8 = size_of::<f64>().
            let i0 = _mm_loadu_si128(cp.add(b) as *const __m128i);
            let i1 = _mm_loadu_si128(cp.add(b + SIMD_LANES) as *const __m128i);
            let g0 = _mm256_i32gather_pd::<8>(xp, i0);
            let g1 = _mm256_i32gather_pd::<8>(xp, i1);
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_loadu_pd(vp.add(b)), g0));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(vp.add(b + SIMD_LANES)), g1));
            b += BLOCK;
        }
        let mut a0 = [0.0; SIMD_LANES];
        let mut a1 = [0.0; SIMD_LANES];
        _mm256_storeu_pd(a0.as_mut_ptr(), acc0);
        _mm256_storeu_pd(a1.as_mut_ptr(), acc1);
        reduce(a0, a1) + tail_csr_dot(&cols[main..], &vals[main..], x)
    }
}

/// `true` when every column index of a width-`cols` operand is a valid
/// non-negative i32 gather offset. News20's 1.36 M features clear this
/// by three orders of magnitude; a hypothetical >2^31-column matrix
/// falls back to the portable path instead of gathering unsoundly.
fn fits_gather(cols: usize) -> bool {
    cols <= i32::MAX as usize
}

// ---------------------------------------------------------------------
// Tier dispatchers: one ambient-tier resolution per kernel call, then a
// straight run of the selected implementation. `Backend` (seq arms) and
// `par` (chunk bodies) both come through here, which is what makes
// backend × tier compose: `par` fixes the chunk boundaries, the tier
// fixes the per-chunk instruction stream.
// ---------------------------------------------------------------------

pub(crate) fn dot(x: &[Scalar], y: &[Scalar]) -> Scalar {
    match resolve() {
        Resolved::Scalar => seq::dot(x, y),
        Resolved::Portable => portable::dot(x, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Resolved::Avx2` is only produced after runtime detection.
        Resolved::Avx2 => unsafe { avx2::dot(x, y) },
    }
}

pub(crate) fn axpy(a: Scalar, x: &[Scalar], y: &mut [Scalar]) {
    match resolve() {
        Resolved::Scalar => seq::axpy(a, x, y),
        Resolved::Portable => portable::axpy(a, x, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Resolved::Avx2` is only produced after runtime detection.
        Resolved::Avx2 => unsafe { avx2::axpy(a, x, y) },
    }
}

pub(crate) fn scale(a: Scalar, x: &mut [Scalar]) {
    match resolve() {
        Resolved::Scalar => seq::scale(a, x),
        Resolved::Portable => portable::scale(a, x),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Resolved::Avx2` is only produced after runtime detection.
        Resolved::Avx2 => unsafe { avx2::scale(a, x) },
    }
}

pub(crate) fn gemv(a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
    match resolve() {
        Resolved::Scalar => seq::gemv(a, x, y),
        Resolved::Portable => portable::gemv(a, x, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Resolved::Avx2` is only produced after runtime detection.
        Resolved::Avx2 => unsafe { avx2::gemv(a, x, y) },
    }
}

pub(crate) fn gemv_t(a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
    match resolve() {
        Resolved::Scalar => seq::gemv_t(a, x, y),
        Resolved::Portable => portable::gemv_t(a, x, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Resolved::Avx2` is only produced after runtime detection.
        Resolved::Avx2 => unsafe { avx2::gemv_t(a, x, y) },
    }
}

pub(crate) fn spmv(a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
    match resolve() {
        Resolved::Scalar => seq::spmv(a, x, y),
        _ => spmv_rows(a, x, 0, y),
    }
}

/// Rows `base..base + ys.len()` of a spmv — the granularity `par` chunks
/// at, resolving the tier once per chunk.
pub(crate) fn spmv_rows(a: &CsrMatrix, x: &[Scalar], base: usize, ys: &mut [Scalar]) {
    match resolve() {
        Resolved::Scalar => {
            for (off, yi) in ys.iter_mut().enumerate() {
                *yi = a.row(base + off).dot(x);
            }
        }
        Resolved::Portable => {
            for (off, yi) in ys.iter_mut().enumerate() {
                let r = a.row(base + off);
                *yi = portable::csr_dot(r.cols, r.vals, x);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Resolved::Avx2 => {
            if !fits_gather(a.cols()) {
                for (off, yi) in ys.iter_mut().enumerate() {
                    let r = a.row(base + off);
                    *yi = portable::csr_dot(r.cols, r.vals, x);
                }
                return;
            }
            for (off, yi) in ys.iter_mut().enumerate() {
                let r = a.row(base + off);
                // SAFETY: AVX2 detected; indices validated < cols <= i32::MAX.
                *yi = unsafe { avx2::csr_dot(r.cols, r.vals, x) };
            }
        }
    }
}

/// Rows `base..base + ys.len()` of a gemv — the granularity `par` chunks
/// at, resolving the tier once per chunk.
pub(crate) fn gemv_rows(a: &Matrix, x: &[Scalar], base: usize, ys: &mut [Scalar]) {
    match resolve() {
        Resolved::Scalar => {
            for (off, yi) in ys.iter_mut().enumerate() {
                *yi = seq::dot(a.row(base + off), x);
            }
        }
        Resolved::Portable => {
            for (off, yi) in ys.iter_mut().enumerate() {
                *yi = portable::dot(a.row(base + off), x);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Resolved::Avx2 => {
            for (off, yi) in ys.iter_mut().enumerate() {
                // SAFETY: `Resolved::Avx2` is only produced after runtime detection.
                *yi = unsafe { avx2::dot(a.row(base + off), x) };
            }
        }
    }
}

/// Rows `base..base + rows` of a `C = A B^T` product — the granularity
/// `par` chunks at, resolving the tier once per chunk. `c_rows` holds the
/// output rows contiguously (`rows * b.rows()` scalars).
///
/// There is deliberately *no* zero-skip here (see `Backend::gemm` docs):
/// every product is formed, so NaN/±inf propagate unconditionally in every
/// tier — which is exactly why the inner dot is free to join the reduction
/// class (bitwise equal to scalar on integer-valued data, AVX2 == portable
/// bitwise on any data).
pub(crate) fn gemm_nt_rows(a: &Matrix, b: &Matrix, base: usize, c_rows: &mut [Scalar]) {
    let m = b.rows();
    match resolve() {
        Resolved::Scalar => {
            for (off, c_row) in c_rows.chunks_mut(m).enumerate() {
                let a_row = a.row(base + off);
                for (j, cij) in c_row.iter_mut().enumerate() {
                    *cij = seq::dot(a_row, b.row(j));
                }
            }
        }
        Resolved::Portable => {
            for (off, c_row) in c_rows.chunks_mut(m).enumerate() {
                let a_row = a.row(base + off);
                for (j, cij) in c_row.iter_mut().enumerate() {
                    *cij = portable::dot(a_row, b.row(j));
                }
            }
        }
        #[cfg(target_arch = "x86_64")]
        Resolved::Avx2 => {
            for (off, c_row) in c_rows.chunks_mut(m).enumerate() {
                let a_row = a.row(base + off);
                for (j, cij) in c_row.iter_mut().enumerate() {
                    // SAFETY: `Resolved::Avx2` is only produced after runtime detection.
                    *cij = unsafe { avx2::dot(a_row, b.row(j)) };
                }
            }
        }
    }
}

/// `C = A B^T` with the inner dot routed through the ambient tier (the
/// whole matrix as one "chunk" of [`gemm_nt_rows`]).
pub(crate) fn gemm_nt(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    gemm_nt_rows(a, b, 0, c.as_mut_slice());
}

/// One sparse row dot under the ambient tier (used by the blocked CSR
/// layout, whose per-block column views keep indices gather-safe).
pub(crate) fn csr_row_dot(row: CsrRow<'_>, x: &[Scalar]) -> Scalar {
    match resolve() {
        Resolved::Scalar => row.dot(x),
        Resolved::Portable => portable::csr_dot(row.cols, row.vals, x),
        #[cfg(target_arch = "x86_64")]
        Resolved::Avx2 => {
            if fits_gather(x.len()) {
                // SAFETY: AVX2 detected; indices validated < x.len() <= i32::MAX.
                unsafe { avx2::csr_dot(row.cols, row.vals, x) }
            } else {
                portable::csr_dot(row.cols, row.vals, x)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::with_tier;

    fn int_vec(n: usize, seed: u64) -> Vec<Scalar> {
        (0..n)
            .map(|i| ((i as u64).wrapping_mul(seed.wrapping_add(7)) % 17) as Scalar - 8.0)
            .collect()
    }

    fn frac_vec(n: usize, seed: u64) -> Vec<Scalar> {
        (0..n).map(|i| (((i as u64).wrapping_mul(seed) % 1009) as Scalar) * 0.001 - 0.3).collect()
    }

    #[test]
    fn portable_dot_matches_seq_on_integer_data_for_all_tails() {
        for n in 0..=3 * BLOCK {
            let x = int_vec(n, 3);
            let y = int_vec(n, 11);
            assert_eq!(portable_only_dot(&x, &y), seq::dot(&x, &y), "n={n}");
        }
    }

    fn portable_only_dot(x: &[Scalar], y: &[Scalar]) -> Scalar {
        with_tier(KernelTier::SimdPortable, || dot(x, y))
    }

    #[test]
    fn simd_and_portable_dot_are_bitwise_equal_on_any_data() {
        for n in [0, 1, 7, 8, 9, 63, 64, 65, 1023] {
            let x = frac_vec(n, 5);
            let y = frac_vec(n, 13);
            let s = with_tier(KernelTier::Simd, || dot(&x, &y));
            let p = with_tier(KernelTier::SimdPortable, || dot(&x, &y));
            assert_eq!(s.to_bits(), p.to_bits(), "n={n}");
        }
    }

    #[test]
    fn elementwise_kernels_are_bitwise_equal_across_all_tiers_on_any_data() {
        let x = frac_vec(133, 17);
        for tier in [KernelTier::Simd, KernelTier::SimdPortable] {
            let mut y_ref = frac_vec(133, 29);
            let mut y_simd = y_ref.clone();
            seq::axpy(0.37, &x, &mut y_ref);
            with_tier(tier, || axpy(0.37, &x, &mut y_simd));
            assert_eq!(y_ref, y_simd, "{tier:?}");

            let mut s_ref = x.clone();
            let mut s_simd = x.clone();
            seq::scale(-1.75, &mut s_ref);
            with_tier(tier, || scale(-1.75, &mut s_simd));
            assert_eq!(s_ref, s_simd, "{tier:?}");
        }
    }

    #[test]
    fn sparse_dot_matches_csr_row_dot_on_integer_data() {
        let d = Matrix::from_fn(9, 67, |i, j| {
            if (i * 31 + j * 7) % 3 == 0 {
                ((i * 5 + j) % 13) as Scalar - 6.0
            } else {
                0.0
            }
        });
        let s = CsrMatrix::from_dense(&d);
        let x = int_vec(67, 23);
        for i in 0..9 {
            let expect = s.row(i).dot(&x);
            for tier in [KernelTier::Simd, KernelTier::SimdPortable] {
                let got = with_tier(tier, || csr_row_dot(s.row(i), &x));
                assert_eq!(got.to_bits(), expect.to_bits(), "row {i} {tier:?}");
            }
        }
    }
}
