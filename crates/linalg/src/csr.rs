//! Compressed Sparse Row (CSR) matrix.

use crate::{Matrix, Scalar};

/// A sparse matrix in Compressed Sparse Row format.
///
/// `row_ptr` has `rows + 1` entries; row `i` occupies
/// `col_idx[row_ptr[i]..row_ptr[i+1]]` / `values[...]` with column indices
/// strictly increasing inside a row. Column indices are stored as `u32`
/// (the paper's largest dataset, news20, has 1.36 M features) to halve
/// index memory traffic, which matters for the GPU coalescing model.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<Scalar>,
}

/// A borrowed view of one CSR row: parallel slices of column indices and
/// values.
#[derive(Clone, Copy, Debug)]
pub struct CsrRow<'a> {
    /// Column indices of the non-zero entries, strictly increasing.
    pub cols: &'a [u32],
    /// Values of the non-zero entries.
    pub vals: &'a [Scalar],
}

impl<'a> CsrRow<'a> {
    /// Number of non-zero entries in the row.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Sparse dot product with a dense vector.
    #[inline]
    pub fn dot(&self, x: &[Scalar]) -> Scalar {
        self.cols.iter().zip(self.vals).map(|(&c, &v)| v * x[c as usize]).sum()
    }

    /// `y[c] += a * v` for every non-zero `(c, v)` of the row.
    #[inline]
    pub fn axpy_into(&self, a: Scalar, y: &mut [Scalar]) {
        for (&c, &v) in self.cols.iter().zip(self.vals) {
            y[c as usize] += a * v;
        }
    }

    /// Squared Euclidean norm of the row.
    pub fn norm_sq(&self) -> Scalar {
        self.vals.iter().map(|v| v * v).sum()
    }
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(col, value)` pairs.
    ///
    /// Entries inside each row are sorted by column; duplicate columns in a
    /// row are rejected.
    ///
    /// # Panics
    /// Panics if any column index is `>= cols` or duplicated within a row.
    pub fn from_row_entries(rows: usize, cols: usize, entries: &[Vec<(u32, Scalar)>]) -> Self {
        assert_eq!(entries.len(), rows, "one entry list per row required");
        let nnz: usize = entries.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for row in entries {
            let mut sorted: Vec<(u32, Scalar)> = row.clone();
            sorted.sort_unstable_by_key(|&(c, _)| c);
            for w in sorted.windows(2) {
                assert_ne!(w[0].0, w[1].0, "duplicate column {} in a row", w[0].0);
            }
            for (c, v) in sorted {
                assert!((c as usize) < cols, "column {c} out of bounds (cols={cols})");
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Builds a CSR matrix from raw components.
    ///
    /// # Panics
    /// Panics if the components violate CSR invariants (see
    /// [`CsrMatrix::validate`]).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<Scalar>,
    ) -> Self {
        let m = CsrMatrix { rows, cols, row_ptr, col_idx, values };
        m.validate();
        m
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { rows: m.rows(), cols: m.cols(), row_ptr, col_idx, values }
    }

    /// Extracts rows `lo..hi` into an owned CSR matrix with the same
    /// column count (the distributed layer's shard extraction; the dense
    /// counterpart is [`Matrix::row_range`]).
    ///
    /// # Panics
    /// Panics unless `lo <= hi <= rows`.
    pub fn row_range(&self, lo: usize, hi: usize) -> CsrMatrix {
        assert!(lo <= hi && hi <= self.rows, "row range {lo}..{hi} out of 0..{}", self.rows);
        let (start, end) = (self.row_ptr[lo], self.row_ptr[hi]);
        let row_ptr = self.row_ptr[lo..=hi].iter().map(|p| p - start).collect();
        CsrMatrix {
            rows: hi - lo,
            cols: self.cols,
            row_ptr,
            col_idx: self.col_idx[start..end].to_vec(),
            values: self.values[start..end].to_vec(),
        }
    }

    /// Materializes the matrix densely.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let r = self.row(i);
            for (&c, &v) in r.cols.iter().zip(r.vals) {
                *m.at_mut(i, c as usize) = v;
            }
        }
        m
    }

    /// Checks all CSR invariants, panicking on the first violation.
    ///
    /// Invariants: `row_ptr` has `rows + 1` monotone entries ending at
    /// `nnz`; `col_idx` and `values` have equal length; column indices are
    /// in bounds and strictly increasing within each row.
    pub fn validate(&self) {
        assert_eq!(self.row_ptr.len(), self.rows + 1, "row_ptr length");
        assert_eq!(self.row_ptr[0], 0, "row_ptr must start at 0");
        // analyzer: allow(panic-freedom) -- row_ptr is asserted nonempty (rows + 1 entries) two lines up
        assert_eq!(*self.row_ptr.last().unwrap(), self.values.len(), "row_ptr must end at nnz");
        assert_eq!(self.col_idx.len(), self.values.len(), "col/val length mismatch");
        for w in self.row_ptr.windows(2) {
            assert!(w[0] <= w[1], "row_ptr not monotone");
        }
        for i in 0..self.rows {
            let cols = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "columns not strictly increasing in row {i}");
            }
            if let Some(&last) = cols.last() {
                assert!((last as usize) < self.cols, "column out of bounds in row {i}");
            }
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of non-zeros in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Borrowed view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> CsrRow<'_> {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        CsrRow { cols: &self.col_idx[lo..hi], vals: &self.values[lo..hi] }
    }

    /// Iterator over all rows.
    pub fn rows_iter(&self) -> impl ExactSizeIterator<Item = CsrRow<'_>> {
        (0..self.rows).map(|i| self.row(i))
    }

    /// The raw `row_ptr` array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw column-index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The raw value array.
    pub fn values(&self) -> &[Scalar] {
        &self.values
    }

    /// Fraction of entries stored (`nnz / (rows * cols)`); 1.0 means fully
    /// dense. This is the "sparsity" column of Table I (reported there as a
    /// percentage of average nnz over feature count).
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Bytes needed by the sparse representation (values + indices +
    /// row pointers), the "s" size column of Table I.
    pub fn sparse_size_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<Scalar>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.row_ptr.len() * std::mem::size_of::<usize>()
    }

    /// Bytes a dense materialization would need, the "d" size of Table I.
    pub fn dense_size_bytes(&self) -> usize {
        self.rows * self.cols * std::mem::size_of::<Scalar>()
    }

    /// Minimum, average, and maximum nnz per row — the "#nnz/exp" column of
    /// Table I. Returns `(0, 0.0, 0)` for an empty matrix.
    pub fn nnz_per_row_stats(&self) -> (usize, f64, usize) {
        if self.rows == 0 {
            return (0, 0.0, 0);
        }
        let mut min = usize::MAX;
        let mut max = 0;
        for i in 0..self.rows {
            let n = self.row_nnz(i);
            min = min.min(n);
            max = max.max(n);
        }
        (min, self.nnz() as f64 / self.rows as f64, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 0 3 4 ]
        CsrMatrix::from_row_entries(
            3,
            3,
            &[vec![(0, 1.0), (2, 2.0)], vec![], vec![(1, 3.0), (2, 4.0)]],
        )
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (3, 3, 4));
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn row_view_and_dot() {
        let m = sample();
        let x = vec![1.0, 10.0, 100.0];
        assert_eq!(m.row(0).dot(&x), 201.0);
        assert_eq!(m.row(1).dot(&x), 0.0);
        assert_eq!(m.row(2).dot(&x), 430.0);
    }

    #[test]
    fn axpy_into_scatters() {
        let m = sample();
        let mut y = vec![0.0; 3];
        m.row(2).axpy_into(2.0, &mut y);
        assert_eq!(y, vec![0.0, 6.0, 8.0]);
    }

    #[test]
    fn dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d.at(0, 2), 2.0);
        assert_eq!(d.at(1, 1), 0.0);
        assert_eq!(CsrMatrix::from_dense(&d), m);
    }

    #[test]
    fn row_range_extracts_a_valid_slice() {
        let m = sample();
        let s = m.row_range(1, 3);
        s.validate();
        assert_eq!((s.rows(), s.cols()), (2, 3));
        assert_eq!(s.to_dense().as_slice(), m.to_dense().row_range(1, 3).as_slice());
        let empty = m.row_range(2, 2);
        empty.validate();
        assert_eq!(empty.rows(), 0);
        let full = m.row_range(0, 3);
        assert_eq!(full, m);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn row_range_rejects_inverted_bounds() {
        let _ = sample().row_range(2, 1);
    }

    #[test]
    fn from_row_entries_sorts_columns() {
        let m = CsrMatrix::from_row_entries(1, 4, &[vec![(3, 3.0), (0, 1.0)]]);
        assert_eq!(m.col_idx(), &[0, 3]);
        assert_eq!(m.values(), &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        let _ = CsrMatrix::from_row_entries(1, 4, &[vec![(1, 1.0), (1, 2.0)]]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_column_rejected() {
        let _ = CsrMatrix::from_row_entries(1, 2, &[vec![(2, 1.0)]]);
    }

    #[test]
    #[should_panic(expected = "row_ptr must end at nnz")]
    fn from_raw_validates() {
        let _ = CsrMatrix::from_raw(1, 2, vec![0, 2], vec![0], vec![1.0]);
    }

    #[test]
    fn stats_and_sizes() {
        let m = sample();
        let (min, avg, max) = m.nnz_per_row_stats();
        assert_eq!((min, max), (0, 2));
        assert!((avg - 4.0 / 3.0).abs() < 1e-12);
        assert!((m.density() - 4.0 / 9.0).abs() < 1e-12);
        assert_eq!(m.dense_size_bytes(), 9 * 8);
        assert_eq!(m.sparse_size_bytes(), 4 * 8 + 4 * 4 + 4 * 8);
    }

    #[test]
    fn empty_matrix_stats() {
        let m = CsrMatrix::from_row_entries(0, 0, &[]);
        assert_eq!(m.nnz_per_row_stats(), (0, 0.0, 0));
        assert_eq!(m.density(), 0.0);
    }
}
