//! The execution backend: one primitive API, two execution strategies.
//!
//! Orthogonal to the `Seq`/`Par` axis, the ambient [`KernelTier`]
//! (scoped via [`crate::pool::with_tier`]) selects the per-chunk
//! instruction stream: the scalar reference loops or the explicitly
//! vectorized tier. `Par` decides *where* work splits; the tier decides
//! *how* each piece executes — the two compose freely.
//!
//! [`KernelTier`]: crate::KernelTier

use crate::{par, seq, simd, CsrMatrix, Matrix, Scalar};

/// ViennaCL does not parallelize a matrix product whose *result* has fewer
/// than roughly this many entries; below the threshold the kernel runs on a
/// single thread. The paper traces the anomalous ~2X MLP speedup (Table II,
/// Fig. 6) to exactly this behaviour, so the parallel backend reproduces it.
pub const DEFAULT_GEMM_PARALLEL_THRESHOLD: usize = 5000;

/// A linear-algebra execution backend.
///
/// All primitives have identical semantics across variants (the results are
/// bit-identical for `Seq` and numerically equal up to reduction reordering
/// for `Par`); only the execution strategy differs. This mirrors the
/// "common API" design of ViennaCL that the paper's synchronous SGD relies
/// on: switching device means switching the backend value, not the code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded reference implementation.
    Seq,
    /// Rayon-parallel implementation running on the current thread pool.
    Par {
        /// Result-size threshold below which `gemm` stays sequential
        /// (ViennaCL's behaviour). Set to 0 to always parallelize.
        gemm_parallel_threshold: usize,
    },
}

impl Backend {
    /// The sequential backend.
    pub fn seq() -> Self {
        Backend::Seq
    }

    /// The parallel backend with ViennaCL's default GEMM threshold.
    pub fn par() -> Self {
        Backend::Par { gemm_parallel_threshold: DEFAULT_GEMM_PARALLEL_THRESHOLD }
    }

    /// The parallel backend with every primitive parallelized regardless of
    /// size (used by the Fig. 6 ablation).
    pub fn par_unconditional() -> Self {
        Backend::Par { gemm_parallel_threshold: 0 }
    }

    /// `true` for the parallel variants.
    pub fn is_parallel(&self) -> bool {
        matches!(self, Backend::Par { .. })
    }

    /// Dot product `x . y`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn dot(&self, x: &[Scalar], y: &[Scalar]) -> Scalar {
        assert_eq!(x.len(), y.len(), "dot length mismatch");
        match self {
            Backend::Seq => simd::dot(x, y),
            Backend::Par { .. } => par::dot(x, y),
        }
    }

    /// `y += a * x`.
    pub fn axpy(&self, a: Scalar, x: &[Scalar], y: &mut [Scalar]) {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        match self {
            Backend::Seq => simd::axpy(a, x, y),
            Backend::Par { .. } => par::axpy(a, x, y),
        }
    }

    /// `x *= a`.
    pub fn scale(&self, a: Scalar, x: &mut [Scalar]) {
        match self {
            Backend::Seq => simd::scale(a, x),
            Backend::Par { .. } => par::scale(a, x),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self, x: &[Scalar]) -> Scalar {
        match self {
            Backend::Seq => x.iter().sum(),
            Backend::Par { .. } => par::sum(x),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F>(&self, x: &mut [Scalar], f: F)
    where
        F: Fn(Scalar) -> Scalar + Sync + Send,
    {
        match self {
            Backend::Seq => {
                for v in x.iter_mut() {
                    *v = f(*v);
                }
            }
            Backend::Par { .. } => par::map_inplace(x, f),
        }
    }

    /// `out[i] = f(a[i], b[i])`.
    pub fn zip_map<F>(&self, a: &[Scalar], b: &[Scalar], out: &mut [Scalar], f: F)
    where
        F: Fn(Scalar, Scalar) -> Scalar + Sync + Send,
    {
        assert!(a.len() == b.len() && b.len() == out.len(), "zip_map length mismatch");
        match self {
            Backend::Seq => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = f(x, y);
                }
            }
            Backend::Par { .. } => par::zip_map(a, b, out, f),
        }
    }

    /// Dense matrix-vector product `y = A x`.
    pub fn gemv(&self, a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
        assert_eq!(a.cols(), x.len(), "gemv inner dimension");
        assert_eq!(a.rows(), y.len(), "gemv outer dimension");
        match self {
            Backend::Seq => simd::gemv(a, x, y),
            Backend::Par { .. } => par::gemv(a, x, y),
        }
    }

    /// Transposed dense matrix-vector product `y = A^T x`.
    pub fn gemv_t(&self, a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
        assert_eq!(a.rows(), x.len(), "gemv_t inner dimension");
        assert_eq!(a.cols(), y.len(), "gemv_t outer dimension");
        match self {
            Backend::Seq => simd::gemv_t(a, x, y),
            Backend::Par { .. } => par::gemv_t(a, x, y),
        }
    }

    /// Dense matrix product `C = A B`.
    ///
    /// Under `Par`, the product runs sequentially when
    /// `C.len() < gemm_parallel_threshold` (the ViennaCL quirk).
    ///
    /// # Zero-skip contract
    ///
    /// `gemm` and [`Backend::gemm_tn`] treat exact-zero entries of A
    /// (either sign, including `-0.0`) as *structural* zeros: the
    /// corresponding row of B is skipped entirely. Consequences, pinned
    /// by `tests/kernel_semantics.rs` and identical across `Seq`/`Par`
    /// and every [`crate::KernelTier`]:
    ///
    /// * NaN or ±inf in a row of B multiplied only by zero entries of A
    ///   does **not** propagate into C (strict IEEE `0 * NaN = NaN`
    ///   would);
    /// * an output whose every contribution is skipped is `+0.0` even
    ///   when the strict IEEE sum of `0 * b` terms would be `-0.0`;
    /// * with no zero entries in A, results are the strict IEEE
    ///   accumulation (NaN payloads and infinities propagate normally).
    ///   One caveat: when an output combines *multiple* invalid
    ///   contributions (two NaNs meeting in one add, or `inf - inf`),
    ///   IEEE leaves which payload survives unspecified and hardware
    ///   picks by operand order — so across tiers only NaN-*ness* is
    ///   pinned there, not the payload bits.
    ///
    /// [`Backend::gemm_nt`] is dot-product-based and performs *no* skip:
    /// it propagates NaN/±inf from B unconditionally, in every tier. This
    /// asymmetry is deliberate and also pinned — sparse-aware skipping is
    /// only worth its branch on the rank-1-update (axpy) formulations.
    /// Precisely because nothing is skipped, `gemm_nt`'s inner dot is
    /// free to route through the ambient tier: the only tier-visible
    /// effect is reduction order, so it joins the reduction class
    /// (bitwise equal to the scalar tier on integer-valued data, AVX2 ==
    /// portable bitwise on any data — pinned in `kernel_semantics.rs`).
    pub fn gemm(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        assert_eq!(a.cols(), b.rows(), "gemm inner dimension");
        assert_eq!(a.rows(), c.rows(), "gemm rows");
        assert_eq!(b.cols(), c.cols(), "gemm cols");
        match self {
            Backend::Seq => seq::gemm(a, b, c),
            Backend::Par { gemm_parallel_threshold } => {
                if c.len() < *gemm_parallel_threshold {
                    seq::gemm(a, b, c);
                } else {
                    par::gemm(a, b, c);
                }
            }
        }
    }

    /// Dense matrix product with transposed right operand, `C = A B^T`.
    ///
    /// Subject to the same parallelism threshold as [`Backend::gemm`].
    pub fn gemm_nt(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        assert_eq!(a.cols(), b.cols(), "gemm_nt inner dimension");
        assert_eq!(a.rows(), c.rows(), "gemm_nt rows");
        assert_eq!(b.rows(), c.cols(), "gemm_nt cols");
        match self {
            Backend::Seq => simd::gemm_nt(a, b, c),
            Backend::Par { gemm_parallel_threshold } => {
                if c.len() < *gemm_parallel_threshold {
                    simd::gemm_nt(a, b, c);
                } else {
                    par::gemm_nt(a, b, c);
                }
            }
        }
    }

    /// Dense matrix product with transposed left operand, `C = A^T B`.
    ///
    /// Subject to the same parallelism threshold as [`Backend::gemm`].
    pub fn gemm_tn(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        assert_eq!(a.rows(), b.rows(), "gemm_tn inner dimension");
        assert_eq!(a.cols(), c.rows(), "gemm_tn rows");
        assert_eq!(b.cols(), c.cols(), "gemm_tn cols");
        match self {
            Backend::Seq => seq::gemm_tn(a, b, c),
            Backend::Par { gemm_parallel_threshold } => {
                if c.len() < *gemm_parallel_threshold {
                    seq::gemm_tn(a, b, c);
                } else {
                    par::gemm_tn(a, b, c);
                }
            }
        }
    }

    /// Sparse matrix-vector product `y = A x` over CSR.
    pub fn spmv(&self, a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
        assert_eq!(a.cols(), x.len(), "spmv inner dimension");
        assert_eq!(a.rows(), y.len(), "spmv outer dimension");
        match self {
            Backend::Seq => simd::spmv(a, x, y),
            Backend::Par { .. } => par::spmv(a, x, y),
        }
    }

    /// Transposed sparse matrix-vector product `y = A^T x`.
    ///
    /// The parallel variant accumulates into per-chunk scratch vectors and
    /// reduces, because the scatter pattern of CSR columns would otherwise
    /// race.
    pub fn spmv_t(&self, a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
        assert_eq!(a.rows(), x.len(), "spmv_t inner dimension");
        assert_eq!(a.cols(), y.len(), "spmv_t outer dimension");
        match self {
            Backend::Seq => seq::spmv_t(a, x, y),
            Backend::Par { .. } => par::spmv_t(a, x, y),
        }
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self, x: &[Scalar]) -> Scalar {
        self.dot(x, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;

    fn mat() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn seq_and_par_dot_agree() {
        let x: Vec<Scalar> = (0..1000).map(|i| i as Scalar * 0.5).collect();
        let y: Vec<Scalar> = (0..1000).map(|i| (i % 7) as Scalar).collect();
        let s = Backend::seq().dot(&x, &y);
        let p = Backend::par().dot(&x, &y);
        assert!((s - p).abs() < 1e-6 * s.abs());
    }

    #[test]
    fn gemv_matches_hand_computation() {
        let a = mat();
        let x = vec![1.0, 0.0, -1.0];
        for be in [Backend::seq(), Backend::par()] {
            let mut y = vec![0.0; 2];
            be.gemv(&a, &x, &mut y);
            assert_eq!(y, vec![-2.0, -2.0]);
        }
    }

    #[test]
    fn gemv_t_matches_transpose_gemv() {
        let a = mat();
        let at = a.transposed();
        let x = vec![1.0, 2.0];
        for be in [Backend::seq(), Backend::par()] {
            let mut y1 = vec![0.0; 3];
            let mut y2 = vec![0.0; 3];
            be.gemv_t(&a, &x, &mut y1);
            be.gemv(&at, &x, &mut y2);
            assert!(approx_eq_slice(&y1, &y2, 1e-12));
        }
    }

    #[test]
    fn gemm_matches_reference() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + j) as Scalar);
        let b = Matrix::from_fn(3, 5, |i, j| (i as Scalar - j as Scalar) * 0.5);
        let mut c_seq = Matrix::zeros(4, 5);
        let mut c_par = Matrix::zeros(4, 5);
        Backend::seq().gemm(&a, &b, &mut c_seq);
        Backend::par_unconditional().gemm(&a, &b, &mut c_par);
        assert!(approx_eq_slice(c_seq.as_slice(), c_par.as_slice(), 1e-12));
        // Spot check C[1][2] = sum_k A[1][k] * B[k][2].
        let expect: Scalar =
            (0..3).map(|k| ((1 + k) as Scalar) * ((k as Scalar - 2.0) * 0.5)).sum();
        assert!((c_seq.at(1, 2) - expect).abs() < 1e-12);
    }

    #[test]
    fn gemm_nt_and_tn_match_explicit_transposes() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as Scalar * 0.5);
        let b = Matrix::from_fn(5, 3, |i, j| i as Scalar - j as Scalar);
        let bt = b.transposed();
        for be in [Backend::seq(), Backend::par_unconditional()] {
            let mut c1 = Matrix::zeros(4, 5);
            let mut c2 = Matrix::zeros(4, 5);
            be.gemm_nt(&a, &b, &mut c1);
            be.gemm(&a, &bt, &mut c2);
            assert!(approx_eq_slice(c1.as_slice(), c2.as_slice(), 1e-12));
        }
        let c = Matrix::from_fn(4, 6, |i, j| ((i + j) % 3) as Scalar);
        let at = a.transposed();
        for be in [Backend::seq(), Backend::par_unconditional()] {
            let mut c1 = Matrix::zeros(3, 6);
            let mut c2 = Matrix::zeros(3, 6);
            be.gemm_tn(&a, &c, &mut c1);
            be.gemm(&at, &c, &mut c2);
            assert!(approx_eq_slice(c1.as_slice(), c2.as_slice(), 1e-12));
        }
    }

    #[test]
    fn spmv_matches_dense_gemv() {
        let d = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0], &[0.0, 3.0, 4.0]]);
        let s = CsrMatrix::from_dense(&d);
        let x = vec![1.0, 10.0, 100.0];
        for be in [Backend::seq(), Backend::par()] {
            let mut yd = vec![0.0; 3];
            let mut ys = vec![0.0; 3];
            be.gemv(&d, &x, &mut yd);
            be.spmv(&s, &x, &mut ys);
            assert!(approx_eq_slice(&yd, &ys, 1e-12));
        }
    }

    #[test]
    fn spmv_t_matches_dense_gemv_t() {
        let d = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[5.0, 0.0, 0.0], &[0.0, 3.0, 4.0]]);
        let s = CsrMatrix::from_dense(&d);
        let x = vec![1.0, -2.0, 3.0];
        for be in [Backend::seq(), Backend::par()] {
            let mut yd = vec![0.0; 3];
            let mut ys = vec![0.0; 3];
            be.gemv_t(&d, &x, &mut yd);
            be.spmv_t(&s, &x, &mut ys);
            assert!(approx_eq_slice(&yd, &ys, 1e-12));
        }
    }

    #[test]
    fn axpy_scale_sum_map() {
        for be in [Backend::seq(), Backend::par()] {
            let x = vec![1.0, 2.0, 3.0];
            let mut y = vec![10.0, 20.0, 30.0];
            be.axpy(2.0, &x, &mut y);
            assert_eq!(y, vec![12.0, 24.0, 36.0]);
            be.scale(0.5, &mut y);
            assert_eq!(y, vec![6.0, 12.0, 18.0]);
            assert_eq!(be.sum(&y), 36.0);
            be.map_inplace(&mut y, |v| v - 6.0);
            assert_eq!(y, vec![0.0, 6.0, 12.0]);
            let a = vec![1.0, 2.0];
            let b = vec![3.0, 4.0];
            let mut out = vec![0.0; 2];
            be.zip_map(&a, &b, &mut out, |p, q| p * q);
            assert_eq!(out, vec![3.0, 8.0]);
        }
    }

    #[test]
    #[should_panic(expected = "gemv inner dimension")]
    fn gemv_checks_dims() {
        let mut y = vec![0.0; 2];
        Backend::seq().gemv(&mat(), &[1.0], &mut y);
    }

    #[test]
    fn par_helpers() {
        assert!(Backend::par().is_parallel());
        assert!(!Backend::seq().is_parallel());
        assert_eq!(
            Backend::par(),
            Backend::Par { gemm_parallel_threshold: DEFAULT_GEMM_PARALLEL_THRESHOLD }
        );
    }
}
