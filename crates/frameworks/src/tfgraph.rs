//! A TensorFlow-style static dataflow graph with op-granularity execution.
//!
//! The defining performance property reproduced here is *kernel
//! granularity*: every op materializes its output as a fresh tensor and
//! runs as its own kernel through the `Exec` layer (one launch per op on
//! the GPU), and the backward pass is another sequence of per-op kernels —
//! no fusion, no in-place updates. Semantically the forward/backward math
//! is exact, so the statistical behaviour matches our own MLP task; only
//! the execution profile differs.

use sgd_linalg::{Exec, Matrix, Scalar};

/// A node identifier within a [`Graph`].
pub type NodeId = usize;

/// Dataflow operations (the subset TensorFlow 0.12 needs for the paper's
/// fully-connected MLPs).
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// The fed batch of examples.
    Input,
    /// Trainable parameter (index into the session's parameter list).
    /// Biases are `1 x k` matrices broadcast by `BiasAdd`.
    Param(usize),
    /// Dense matrix product of two nodes.
    MatMul(NodeId, NodeId),
    /// Adds a `1 x k` bias row to every row of a matrix.
    BiasAdd(NodeId, NodeId),
    /// Element-wise tanh (the hidden activation of the study's MLPs).
    Tanh(NodeId),
    /// Fused softmax + cross-entropy against the fed class labels; output
    /// is a `1 x 1` matrix holding the mean loss.
    SoftmaxXent(NodeId),
}

/// A static computation graph in topological order.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    ops: Vec<Op>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Appends an op, returning its node id.
    ///
    /// # Panics
    /// Panics if an operand id does not precede the new node (the graph
    /// must be built in topological order).
    pub fn add(&mut self, op: Op) -> NodeId {
        let id = self.ops.len();
        let check = |&o: &NodeId| assert!(o < id, "operand {o} does not precede node {id}");
        match &op {
            Op::MatMul(a, b) | Op::BiasAdd(a, b) => {
                check(a);
                check(b);
            }
            Op::Tanh(a) | Op::SoftmaxXent(a) => check(a),
            Op::Input | Op::Param(_) => {}
        }
        self.ops.push(op);
        id
    }

    /// The ops in topological order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Builds the paper's MLP graph for the given layer widths. Returns
    /// `(graph, loss node, parameter shapes)` where parameters alternate
    /// weight matrices and `1 x k` bias rows per layer.
    pub fn mlp(layers: &[usize]) -> (Graph, NodeId, Vec<(usize, usize)>) {
        assert!(layers.len() >= 2, "an MLP needs input and output layers");
        let mut g = Graph::new();
        let mut shapes = Vec::new();
        let mut cur = g.add(Op::Input);
        for l in 0..layers.len() - 1 {
            let w = g.add(Op::Param(shapes.len()));
            shapes.push((layers[l], layers[l + 1]));
            let b = g.add(Op::Param(shapes.len()));
            shapes.push((1, layers[l + 1]));
            let mm = g.add(Op::MatMul(cur, w));
            let z = g.add(Op::BiasAdd(mm, b));
            cur = if l + 1 < layers.len() - 1 { g.add(Op::Tanh(z)) } else { z };
        }
        let loss = g.add(Op::SoftmaxXent(cur));
        (g, loss, shapes)
    }
}

/// An execution session holding the parameter tensors (TF variables).
pub struct Session {
    graph: Graph,
    params: Vec<Matrix>,
}

impl Session {
    /// Creates a session with initial parameter values.
    pub fn new(graph: Graph, params: Vec<Matrix>) -> Self {
        Session { graph, params }
    }

    /// Read access to the parameters.
    pub fn params(&self) -> &[Matrix] {
        &self.params
    }

    /// Mutable access to the parameters (optimizer updates).
    pub fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    /// Forward pass: evaluates every node, materializing each output (the
    /// op-per-kernel execution profile). Returns all node values.
    /// `classes` are the target labels consumed by `SoftmaxXent`; that
    /// node's value is the mean loss (1x1) and its *delta* (softmax -
    /// onehot, scaled) is stashed in `deltas` for the backward pass.
    fn forward<E: Exec>(
        &self,
        e: &mut E,
        input: &Matrix,
        classes: &[usize],
    ) -> (Vec<Matrix>, Vec<Option<Matrix>>) {
        let mut values: Vec<Matrix> = Vec::with_capacity(self.graph.ops.len());
        let mut xent_delta: Vec<Option<Matrix>> = vec![None; self.graph.ops.len()];
        for (id, op) in self.graph.ops.iter().enumerate() {
            let out = match op {
                Op::Input => input.clone(),
                Op::Param(p) => self.params[*p].clone(),
                Op::MatMul(a, b) => {
                    let (va, vb) = (&values[*a], &values[*b]);
                    let mut c = Matrix::zeros(va.rows(), vb.cols());
                    e.gemm(va, vb, &mut c);
                    c
                }
                Op::BiasAdd(a, b) => {
                    let mut c = values[*a].clone();
                    e.add_row_bias(&mut c, values[*b].row(0));
                    c
                }
                Op::Tanh(a) => {
                    let mut c = values[*a].clone();
                    e.map(c.as_mut_slice(), 4.0, |v| v.tanh());
                    c
                }
                Op::SoftmaxXent(a) => {
                    let mut delta = values[*a].clone();
                    let loss = e.softmax_xent(&mut delta, classes);
                    xent_delta[id] = Some(delta);
                    Matrix::from_vec(1, 1, vec![loss])
                }
            };
            values.push(out);
        }
        (values, xent_delta)
    }

    /// Computes the mean loss for a fed batch.
    pub fn loss<E: Exec>(&self, e: &mut E, input: &Matrix, classes: &[usize]) -> Scalar {
        let loss_node = self.loss_node();
        let (values, _) = self.forward(e, input, classes);
        values[loss_node].at(0, 0)
    }

    /// Reverse-mode sweep: returns the gradient of the loss with respect
    /// to every parameter, as a parallel `Vec<Matrix>`. Each backward op
    /// is again a separate kernel with a materialized output.
    pub fn gradients<E: Exec>(&self, e: &mut E, input: &Matrix, classes: &[usize]) -> Vec<Matrix> {
        let (values, xent_delta) = self.forward(e, input, classes);
        let n = self.graph.ops.len();
        let mut adjoint: Vec<Option<Matrix>> = vec![None; n];
        let mut grads: Vec<Matrix> =
            self.params.iter().map(|p| Matrix::zeros(p.rows(), p.cols())).collect();

        for id in (0..n).rev() {
            match &self.graph.ops[id] {
                Op::SoftmaxXent(a) => {
                    // d loss / d logits was produced by the fused kernel.
                    let delta = xent_delta[id].clone().expect("forward stashed the delta");
                    accumulate(e, &mut adjoint[*a], delta);
                }
                Op::Tanh(a) => {
                    if let Some(up) = adjoint[id].clone() {
                        let s = &values[id];
                        let mut d = Matrix::zeros(up.rows(), up.cols());
                        e.zip(up.as_slice(), s.as_slice(), d.as_mut_slice(), 3.0, |u, sv| {
                            u * (1.0 - sv * sv)
                        });
                        accumulate(e, &mut adjoint[*a], d);
                    }
                }
                Op::BiasAdd(a, b) => {
                    if let Some(up) = adjoint[id].clone() {
                        let mut db = Matrix::zeros(1, up.cols());
                        e.col_sums(&up, db.row_mut(0));
                        accumulate(e, &mut adjoint[*b], db);
                        accumulate(e, &mut adjoint[*a], up);
                    }
                }
                Op::MatMul(a, b) => {
                    if let Some(up) = adjoint[id].clone() {
                        let (va, vb) = (&values[*a], &values[*b]);
                        let mut da = Matrix::zeros(va.rows(), va.cols());
                        e.gemm_nt(&up, vb, &mut da);
                        accumulate(e, &mut adjoint[*a], da);
                        let mut db = Matrix::zeros(vb.rows(), vb.cols());
                        e.gemm_tn(va, &up, &mut db);
                        accumulate(e, &mut adjoint[*b], db);
                    }
                }
                Op::Param(p) => {
                    if let Some(d) = adjoint[id].take() {
                        grads[*p] = d;
                    }
                }
                Op::Input => {}
            }
        }
        grads
    }

    /// One gradient-descent step: `param -= alpha * grad`, one axpy kernel
    /// per parameter tensor (TF's `GradientDescentOptimizer` profile).
    pub fn apply_gradients<E: Exec>(&mut self, e: &mut E, grads: &[Matrix], alpha: Scalar) {
        assert_eq!(grads.len(), self.params.len(), "one gradient per parameter");
        for (p, g) in self.params.iter_mut().zip(grads) {
            e.axpy(-alpha, g.as_slice(), p.as_mut_slice());
        }
    }

    fn loss_node(&self) -> NodeId {
        self.graph
            .ops
            .iter()
            .rposition(|op| matches!(op, Op::SoftmaxXent(_)))
            .expect("graph has a loss node")
    }
}

fn accumulate<E: Exec>(e: &mut E, slot: &mut Option<Matrix>, delta: Matrix) {
    match slot {
        None => *slot = Some(delta),
        Some(acc) => {
            let d = delta;
            e.axpy(1.0, d.as_slice(), acc.as_mut_slice());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgd_linalg::CpuExec;
    use sgd_models::{Batch, Examples, MlpTask, Task};

    fn toy() -> (Matrix, Vec<Scalar>, Vec<usize>) {
        let x = Matrix::from_rows(&[
            &[0.5, -1.0, 0.25],
            &[1.0, 0.5, -0.75],
            &[-0.2, 0.1, 0.9],
            &[0.0, 0.3, 0.4],
        ]);
        let y = vec![1.0, -1.0, 1.0, -1.0];
        let classes = y.iter().map(|&l| usize::from(l > 0.0)).collect();
        (x, y, classes)
    }

    /// Builds a session whose parameters equal an `MlpTask` flat model.
    fn session_from_task(task: &MlpTask, w: &[Scalar]) -> Session {
        let (graph, _, shapes) = Graph::mlp(task.layers());
        let mut params = Vec::new();
        let mut off = 0;
        for &(r, c) in &shapes {
            params.push(Matrix::from_vec(r, c, w[off..off + r * c].to_vec()));
            off += r * c;
        }
        assert_eq!(off, w.len());
        Session::new(graph, params)
    }

    #[test]
    fn graph_builder_is_topological() {
        let (g, loss, shapes) = Graph::mlp(&[3, 4, 2]);
        assert_eq!(shapes, vec![(3, 4), (1, 4), (4, 2), (1, 2)]);
        assert!(matches!(g.ops()[loss], Op::SoftmaxXent(_)));
    }

    #[test]
    #[should_panic(expected = "does not precede")]
    fn forward_references_rejected() {
        let mut g = Graph::new();
        g.add(Op::Tanh(5));
    }

    #[test]
    fn loss_matches_mlp_task() {
        let (x, y, classes) = toy();
        let task = MlpTask::new(vec![3, 4, 2], 9);
        let w = task.init_model();
        // Note: MlpTask packs [W, b] per layer in the same order as
        // Graph::mlp's parameter shapes, so the flat layouts agree.
        let sess = session_from_task(&task, &w);
        let mut e = CpuExec::seq();
        let tf_loss = sess.loss(&mut e, &x, &classes);
        let our_loss = task.loss(&mut e, &Batch::new(Examples::Dense(&x), &y), &w);
        assert!((tf_loss - our_loss).abs() < 1e-12, "{tf_loss} vs {our_loss}");
    }

    #[test]
    fn gradients_match_mlp_task() {
        let (x, y, classes) = toy();
        let task = MlpTask::new(vec![3, 5, 2], 4);
        let w = task.init_model();
        let sess = session_from_task(&task, &w);
        let mut e = CpuExec::seq();
        let tf_grads = sess.gradients(&mut e, &x, &classes);
        let mut ours = vec![0.0; task.dim()];
        task.gradient(&mut e, &Batch::new(Examples::Dense(&x), &y), &w, &mut ours);
        let flat: Vec<Scalar> = tf_grads.iter().flat_map(|m| m.as_slice().to_vec()).collect();
        assert_eq!(flat.len(), ours.len());
        assert!(sgd_linalg::approx_eq_slice(&flat, &ours, 1e-10));
    }

    #[test]
    fn deeper_net_gradients_match() {
        let (x, y, classes) = toy();
        let task = MlpTask::new(vec![3, 6, 4, 2], 17);
        let mut w = task.init_model();
        for (i, v) in w.iter_mut().enumerate() {
            *v += 0.01 * ((i % 5) as Scalar - 2.0);
        }
        let sess = session_from_task(&task, &w);
        let mut e = CpuExec::seq();
        let tf_grads = sess.gradients(&mut e, &x, &classes);
        let mut ours = vec![0.0; task.dim()];
        task.gradient(&mut e, &Batch::new(Examples::Dense(&x), &y), &w, &mut ours);
        let flat: Vec<Scalar> = tf_grads.iter().flat_map(|m| m.as_slice().to_vec()).collect();
        assert!(sgd_linalg::approx_eq_slice(&flat, &ours, 1e-10));
    }

    #[test]
    fn training_step_descends() {
        let (x, _, classes) = toy();
        let task = MlpTask::new(vec![3, 4, 2], 2);
        let mut sess = session_from_task(&task, &task.init_model());
        let mut e = CpuExec::seq();
        let l0 = sess.loss(&mut e, &x, &classes);
        for _ in 0..100 {
            let g = sess.gradients(&mut e, &x, &classes);
            sess.apply_gradients(&mut e, &g, 1.0);
        }
        let l1 = sess.loss(&mut e, &x, &classes);
        assert!(l1 < l0 * 0.7, "{l0} -> {l1}");
    }

    #[test]
    fn op_granularity_launches_many_gpu_kernels() {
        let (x, _, classes) = toy();
        let task = MlpTask::new(vec![3, 4, 2], 2);
        let sess = session_from_task(&task, &task.init_model());
        let mut dev = sgd_gpusim::GpuDevice::tesla_k80();
        let mut e = sgd_gpusim::kernels::GpuExec::new(&mut dev);
        let _ = sess.gradients(&mut e, &x, &classes);
        // forward: matmul+bias+tanh+matmul+bias+softmax = 6; backward
        // adds matmul grads (2 each), bias col-sums, tanh zip: >= 12.
        assert!(dev.stats().kernels_launched >= 12, "{}", dev.stats().kernels_launched);
    }
}
