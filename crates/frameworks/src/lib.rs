//! Reference framework comparators.
//!
//! The paper validates its implementations against TensorFlow (sync MLP)
//! and BIDMach (sync LR/SVM) — both support CPU and GPU behind the same
//! driver program. This crate provides faithful stand-ins:
//!
//! * [`tfgraph`] / [`tensorflow`] — a static dataflow-graph executor with
//!   op-granularity kernels and materialized intermediates (no fusion, no
//!   in-place updates), executing the same batch-GD semantics TensorFlow
//!   0.12 used in the paper's experiments (dense data only).
//! * [`bidmach`] — a synchronous GLM optimizer whose GPU kernels are
//!   dense-optimized: sparse inputs run through the naive thread-per-row
//!   layout instead of the coalescing-friendly warp-per-row one, which is
//!   why its GPU speedup trails ours on sparse data (Fig. 8).

pub mod bidmach;
pub mod tensorflow;
pub mod tfgraph;

pub use bidmach::run_bidmach;
#[allow(deprecated)]
pub use bidmach::{run_bidmach_sync, run_bidmach_sync_modeled};
pub use tensorflow::run_tensorflow;
#[allow(deprecated)]
pub use tensorflow::{run_tensorflow_sync, run_tensorflow_sync_modeled};
pub use tfgraph::{Graph, Op, Session};
