//! TensorFlow-like synchronous MLP training (the paper's Fig. 9
//! comparator).
//!
//! Differences from our own implementation, mirroring TensorFlow 0.12:
//!
//! * execution is op-granular through the [`crate::tfgraph`] interpreter —
//!   every op (and every backward op, and one update per parameter
//!   tensor) is a separate kernel with a materialized output;
//! * the GPU path pays a per-op host dispatch overhead (the graph
//!   executor schedules kernels one at a time);
//! * the CPU backend parallelizes *all* matrix products (TF's Eigen has no
//!   ViennaCL-style minimum-size threshold), which is why TF's GPU-over-CPU
//!   speedup is lower than ours on small nets — its CPU baseline is
//!   faster, and its GPU pays more launches.

use std::time::Instant;

use sgd_core::{
    Configuration, DeviceKind, EpochMetrics, LossTrace, RunMetrics, RunOptions, RunOutcome,
    RunReport, Strategy, Timing,
};
use sgd_gpusim::kernels::GpuExec;
use sgd_linalg::{Backend, CpuExec, Matrix, Scalar};
use sgd_models::Task;

use crate::tfgraph::{Graph, Session};

/// Host-side dispatch cost per GPU kernel launch in the graph executor.
const TF_GPU_DISPATCH_SECS: f64 = 50e-6;

/// Builds the TF session for an MLP with the same initialization as
/// [`sgd_models::MlpTask`] (so cross-framework trajectories coincide).
fn build_session(layers: &[usize], seed: u64) -> Session {
    let task = sgd_models::MlpTask::new(layers.to_vec(), seed);
    let w = task.init_model();
    let (graph, _, shapes) = Graph::mlp(layers);
    let mut params = Vec::new();
    let mut off = 0;
    for &(r, c) in &shapes {
        params.push(Matrix::from_vec(r, c, w[off..off + r * c].to_vec()));
        off += r * c;
    }
    Session::new(graph, params)
}

/// Runs the TensorFlow comparator for one engine [`Configuration`]
/// corner.
///
/// The graph executor implements synchronous (full-batch) GD only, so
/// the configuration's strategy must be [`Strategy::Sync`]; the timing
/// source and device follow the configuration like
/// [`sgd_core::Engine::run`].
pub fn run_tensorflow(
    cfg: &Configuration,
    layers: &[usize],
    x: &Matrix,
    y: &[Scalar],
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    assert!(
        matches!(cfg.strategy, Strategy::Sync),
        "the TensorFlow comparator implements synchronous GD only"
    );
    match &cfg.timing {
        Timing::Wall => sync_wall(layers, x, y, cfg.device, alpha, opts),
        Timing::Modeled(mc) => {
            assert_ne!(cfg.device, DeviceKind::Gpu, "modeled timing covers CPU devices");
            sync_modeled(layers, x, y, mc, alpha, opts)
        }
    }
}

/// Runs synchronous (full-batch) MLP training through the graph executor.
#[deprecated(note = "dispatch through `run_tensorflow` with an engine `Configuration`")]
pub fn run_tensorflow_sync(
    layers: &[usize],
    x: &Matrix,
    y: &[Scalar],
    device: DeviceKind,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    sync_wall(layers, x, y, device, alpha, opts)
}

fn sync_wall(
    layers: &[usize],
    x: &Matrix,
    y: &[Scalar],
    device: DeviceKind,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    let classes: Vec<usize> = y.iter().map(|&l| usize::from(l > 0.0)).collect();
    let mut sess = build_session(layers, opts.seed);
    let label = format!("TF MLP sync {}", device.label());

    match device {
        DeviceKind::CpuSeq => {
            cpu_loop(&mut sess, x, &classes, CpuExec::seq(), device, alpha, opts, label)
        }
        DeviceKind::CpuPar => sgd_core::pool::with_threads(opts.threads, || {
            // Eigen-style backend: no small-GEMM threshold.
            cpu_loop(
                &mut sess,
                x,
                &classes,
                CpuExec(Backend::par_unconditional()),
                device,
                alpha,
                opts,
                label,
            )
        }),
        DeviceKind::Gpu => gpu_loop(&mut sess, x, &classes, alpha, opts, label),
    }
}

#[allow(clippy::too_many_arguments)]
fn cpu_loop(
    sess: &mut Session,
    x: &Matrix,
    classes: &[usize],
    mut e: CpuExec,
    device: DeviceKind,
    alpha: f64,
    opts: &RunOptions,
    label: String,
) -> RunReport {
    let mut trace = LossTrace::new();
    trace.push(0.0, sess.loss(&mut e, x, classes));
    let stop = opts.stop_loss();
    let mut opt_seconds = 0.0;
    let mut timed_out = stop.is_some();
    let mut diverged_at = None;
    let mut metrics = RunMetrics::default();
    for epoch in 0..opts.max_epochs {
        let t0 = Instant::now();
        let grads = sess.gradients(&mut e, x, classes);
        sess.apply_gradients(&mut e, &grads, alpha);
        opt_seconds += t0.elapsed().as_secs_f64();
        let loss = sess.loss(&mut e, x, classes);
        trace.push(opt_seconds, loss);
        metrics.epochs.push(EpochMetrics::new(epoch + 1, opt_seconds, loss));
        if !loss.is_finite() {
            diverged_at = Some(epoch + 1);
            break;
        }
        if stop.is_some_and(|s| loss <= s) {
            timed_out = false;
            break;
        }
        if opt_seconds > opts.max_secs {
            break;
        }
    }
    let outcome = RunOutcome::classify(diverged_at, stop.is_some() && !timed_out);
    RunReport {
        label,
        device,
        step_size: alpha,
        trace,
        opt_seconds,
        timed_out,
        metrics,
        outcome,
        best_model: None,
    }
}

fn gpu_loop(
    sess: &mut Session,
    x: &Matrix,
    classes: &[usize],
    alpha: f64,
    opts: &RunOptions,
    label: String,
) -> RunReport {
    let mut dev = opts.gpu_device();
    let mut eval = CpuExec::seq();
    let mut trace = LossTrace::new();
    trace.push(0.0, sess.loss(&mut eval, x, classes));
    let stop = opts.stop_loss();
    let mut warm_cost = 0.0;
    let mut timed_out = stop.is_some();
    let mut diverged_at = None;
    let mut metrics = RunMetrics::default();
    for epoch in 0..opts.max_epochs {
        let cycles0 = dev.elapsed_cycles();
        if epoch < 2 {
            let t0 = dev.elapsed_secs();
            let k0 = dev.stats().kernels_launched;
            let mut e = GpuExec::new(&mut dev);
            let grads = sess.gradients(&mut e, x, classes);
            sess.apply_gradients(&mut e, &grads, alpha);
            let launches = dev.stats().kernels_launched - k0;
            dev.advance_secs(TF_GPU_DISPATCH_SECS * launches as f64);
            warm_cost = dev.elapsed_secs() - t0;
        } else {
            let grads = sess.gradients(&mut eval, x, classes);
            sess.apply_gradients(&mut eval, &grads, alpha);
            dev.advance_secs(warm_cost);
        }
        let loss = sess.loss(&mut eval, x, classes);
        trace.push(dev.elapsed_secs(), loss);
        metrics.epochs.push(EpochMetrics {
            simulated_cycles: dev.elapsed_cycles() - cycles0,
            ..EpochMetrics::new(epoch + 1, dev.elapsed_secs(), loss)
        });
        if !loss.is_finite() {
            diverged_at = Some(epoch + 1);
            break;
        }
        if stop.is_some_and(|s| loss <= s) {
            timed_out = false;
            break;
        }
        if dev.elapsed_secs() > opts.max_secs {
            break;
        }
    }
    let outcome = RunOutcome::classify(diverged_at, stop.is_some() && !timed_out);
    RunReport {
        label,
        device: DeviceKind::Gpu,
        step_size: alpha,
        trace,
        opt_seconds: dev.elapsed_secs(),
        timed_out,
        metrics,
        outcome,
        best_model: None,
    }
}

/// Synchronous MLP training through the graph executor with *modeled* CPU
/// time (see `sgd-cpusim`): the machine is the paper's Xeon, the backend
/// is Eigen-like (no ViennaCL small-GEMM threshold).
#[deprecated(note = "dispatch through `run_tensorflow` with an engine `Configuration`")]
pub fn run_tensorflow_sync_modeled(
    layers: &[usize],
    x: &Matrix,
    y: &[Scalar],
    mc: &sgd_core::CpuModelConfig,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    sync_modeled(layers, x, y, mc, alpha, opts)
}

fn sync_modeled(
    layers: &[usize],
    x: &Matrix,
    y: &[Scalar],
    mc: &sgd_core::CpuModelConfig,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    let classes: Vec<usize> = y.iter().map(|&l| usize::from(l > 0.0)).collect();
    let mut sess = build_session(layers, opts.seed);
    let mut e = sgd_cpusim::CpuModelExec::new(mc.spec.clone(), mc.threads);
    e.gemm_parallel_threshold = 0; // Eigen parallelizes every product
    let mut eval = CpuExec::seq();
    let mut trace = LossTrace::new();
    trace.push(0.0, sess.loss(&mut eval, x, &classes));
    let stop = opts.stop_loss();
    let mut timed_out = stop.is_some();
    let mut diverged_at = None;
    let mut metrics = RunMetrics::default();
    for epoch in 0..opts.max_epochs {
        let grads = sess.gradients(&mut e, x, &classes);
        sess.apply_gradients(&mut e, &grads, alpha);
        let loss = sess.loss(&mut eval, x, &classes);
        trace.push(e.elapsed_secs(), loss);
        metrics.epochs.push(EpochMetrics::new(epoch + 1, e.elapsed_secs(), loss));
        if !loss.is_finite() {
            diverged_at = Some(epoch + 1);
            break;
        }
        if stop.is_some_and(|s| loss <= s) {
            timed_out = false;
            break;
        }
        if e.elapsed_secs() > opts.max_secs {
            break;
        }
    }
    let outcome = RunOutcome::classify(diverged_at, stop.is_some() && !timed_out);
    RunReport {
        label: format!("TF MLP sync {} (modeled)", mc.device().label()),
        device: mc.device(),
        step_size: alpha,
        trace,
        opt_seconds: e.elapsed_secs(),
        timed_out,
        metrics,
        outcome,
        best_model: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgd_core::Engine;
    use sgd_models::{Batch, Examples, MlpTask};

    fn toy() -> (Matrix, Vec<Scalar>) {
        let x = Matrix::from_fn(48, 5, |i, j| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            s * (((i * 3 + j) % 4) as Scalar + 1.0) / 4.0
        });
        let y = (0..48).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        (x, y)
    }

    fn corner(device: DeviceKind) -> Configuration {
        Configuration::new(device, Strategy::Sync)
    }

    #[test]
    fn tf_trajectory_matches_our_sync_mlp() {
        // Same math, same init: TF-sim and our MLP task must produce the
        // same loss trajectory under synchronous GD.
        let (x, y) = toy();
        let layers = vec![5, 4, 2];
        let opts = RunOptions { max_epochs: 8, ..Default::default() };
        let tf = run_tensorflow(&corner(DeviceKind::CpuSeq), &layers, &x, &y, 0.5, &opts);

        let task = MlpTask::new(layers, opts.seed);
        let b = Batch::new(Examples::Dense(&x), &y);
        let ours = Engine::run(&corner(DeviceKind::CpuSeq), &task, &b, 0.5, &opts);
        for (p, q) in tf.trace.points().iter().zip(ours.trace.points()) {
            assert!((p.1 - q.1).abs() < 1e-10, "{} vs {}", p.1, q.1);
        }
    }

    #[test]
    fn gpu_run_is_costed_and_converges_like_cpu() {
        let (x, y) = toy();
        let layers = vec![5, 4, 2];
        let opts = RunOptions { max_epochs: 6, ..Default::default() };
        let gpu = run_tensorflow(&corner(DeviceKind::Gpu), &layers, &x, &y, 0.5, &opts);
        let cpu = run_tensorflow(&corner(DeviceKind::CpuSeq), &layers, &x, &y, 0.5, &opts);
        assert!(gpu.opt_seconds > 0.0);
        for (p, q) in gpu.trace.points().iter().zip(cpu.trace.points()) {
            assert!((p.1 - q.1).abs() < 1e-10);
        }
        assert!(gpu.metrics.total_simulated_cycles().unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn gpu_dispatch_overhead_dominates_tiny_graphs() {
        // >= 12 launches x 50 us means at least ~0.6 ms per epoch on a
        // tiny input regardless of arithmetic.
        let (x, y) = toy();
        let opts = RunOptions { max_epochs: 4, ..Default::default() };
        let gpu = run_tensorflow(&corner(DeviceKind::Gpu), &[5, 4, 2], &x, &y, 0.5, &opts);
        assert!(gpu.time_per_epoch() > 0.5e-3, "{}", gpu.time_per_epoch());
    }
}
