//! BIDMach-like synchronous GLM training (the paper's Fig. 8 comparator).
//!
//! BIDMach's kernels are optimized for dense data; on sparse inputs its
//! GPU path does not use the coalescing-friendly warp-per-row CSR layout.
//! We reproduce that by running the sparse matrix-vector products through
//! the naive thread-per-row kernel on the GPU, which pays warp divergence
//! and non-coalesced value/index loads on skewed sparse data — exactly why
//! the paper's own implementation achieves an equal or better GPU speedup
//! (Fig. 8). Dense data behaves identically to ours.

use std::time::Instant;

use sgd_core::{
    Configuration, DeviceKind, EpochMetrics, LossTrace, RunMetrics, RunOptions, RunOutcome,
    RunReport, Strategy, Timing,
};
use sgd_gpusim::kernels::GpuExec;
use sgd_linalg::CpuExec;
use sgd_models::{Batch, LinearLoss, LinearTask, Task};

/// Runs the BIDMach comparator for one engine [`Configuration`] corner.
///
/// BIDMach's driver in the paper's experiments runs synchronous
/// (full-batch) GD only, so the configuration's strategy must be
/// [`Strategy::Sync`]; the timing source and device follow the
/// configuration like [`sgd_core::Engine::run`].
pub fn run_bidmach<L: LinearLoss>(
    cfg: &Configuration,
    task: &LinearTask<L>,
    batch: &Batch<'_>,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    assert!(
        matches!(cfg.strategy, Strategy::Sync),
        "the BIDMach comparator implements synchronous GD only"
    );
    match &cfg.timing {
        Timing::Wall => sync_wall(task, batch, cfg.device, alpha, opts),
        Timing::Modeled(mc) => {
            assert_ne!(cfg.device, DeviceKind::Gpu, "modeled timing covers CPU devices");
            sync_modeled(task, batch, mc, alpha, opts)
        }
    }
}

/// Runs BIDMach-style synchronous (full-batch) GD for a linear task.
#[deprecated(note = "dispatch through `run_bidmach` with an engine `Configuration`")]
pub fn run_bidmach_sync<L: LinearLoss>(
    task: &LinearTask<L>,
    batch: &Batch<'_>,
    device: DeviceKind,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    sync_wall(task, batch, device, alpha, opts)
}

fn sync_wall<L: LinearLoss>(
    task: &LinearTask<L>,
    batch: &Batch<'_>,
    device: DeviceKind,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    let label = format!("BIDMach {} sync {}", task.name(), device.label());
    match device {
        DeviceKind::CpuSeq => cpu_loop(task, batch, CpuExec::seq(), device, alpha, opts, label),
        DeviceKind::CpuPar => sgd_core::pool::with_threads(opts.threads, || {
            cpu_loop(task, batch, CpuExec::par(), device, alpha, opts, label)
        }),
        DeviceKind::Gpu => gpu_loop(task, batch, alpha, opts, label),
    }
}

#[allow(clippy::too_many_arguments)]
fn cpu_loop<L: LinearLoss>(
    task: &LinearTask<L>,
    batch: &Batch<'_>,
    mut e: CpuExec,
    device: DeviceKind,
    alpha: f64,
    opts: &RunOptions,
    label: String,
) -> RunReport {
    let mut w = task.init_model();
    let mut g = vec![0.0; task.dim()];
    let mut trace = LossTrace::new();
    trace.push(0.0, task.loss(&mut e, batch, &w));
    let stop = opts.stop_loss();
    let mut opt_seconds = 0.0;
    let mut timed_out = stop.is_some();
    let mut diverged_at = None;
    let mut metrics = RunMetrics::default();
    for epoch in 0..opts.max_epochs {
        let t0 = Instant::now();
        task.gradient(&mut e, batch, &w, &mut g);
        sgd_linalg::Exec::axpy(&mut e, -alpha, &g, &mut w);
        opt_seconds += t0.elapsed().as_secs_f64();
        let loss = task.loss(&mut e, batch, &w);
        trace.push(opt_seconds, loss);
        metrics.epochs.push(EpochMetrics::new(epoch + 1, opt_seconds, loss));
        if !loss.is_finite() {
            diverged_at = Some(epoch + 1);
            break;
        }
        if stop.is_some_and(|s| loss <= s) {
            timed_out = false;
            break;
        }
        if opt_seconds > opts.max_secs {
            break;
        }
    }
    let outcome = RunOutcome::classify(diverged_at, stop.is_some() && !timed_out);
    RunReport {
        label,
        device,
        step_size: alpha,
        trace,
        opt_seconds,
        timed_out,
        metrics,
        outcome,
        best_model: None,
    }
}

fn gpu_loop<L: LinearLoss>(
    task: &LinearTask<L>,
    batch: &Batch<'_>,
    alpha: f64,
    opts: &RunOptions,
    label: String,
) -> RunReport {
    let mut dev = opts.gpu_device();
    let mut eval = CpuExec::seq();
    let mut w = task.init_model();
    let mut g = vec![0.0; task.dim()];
    let mut trace = LossTrace::new();
    trace.push(0.0, task.loss(&mut eval, batch, &w));
    let stop = opts.stop_loss();
    let mut warm_cost = 0.0;
    let mut timed_out = stop.is_some();
    let mut diverged_at = None;
    let mut metrics = RunMetrics::default();
    for epoch in 0..opts.max_epochs {
        let cycles0 = dev.elapsed_cycles();
        if epoch < 2 {
            let t0 = dev.elapsed_secs();
            // Dense-optimized kernels: sparse ops take the naive
            // thread-per-row layout.
            let mut e = GpuExec { dev: &mut dev, thread_per_row: true };
            task.gradient(&mut e, batch, &w, &mut g);
            sgd_linalg::Exec::axpy(&mut e, -alpha, &g, &mut w);
            warm_cost = dev.elapsed_secs() - t0;
        } else {
            task.gradient(&mut eval, batch, &w, &mut g);
            sgd_linalg::Exec::axpy(&mut eval, -alpha, &g, &mut w);
            dev.advance_secs(warm_cost);
        }
        let loss = task.loss(&mut eval, batch, &w);
        trace.push(dev.elapsed_secs(), loss);
        metrics.epochs.push(EpochMetrics {
            simulated_cycles: dev.elapsed_cycles() - cycles0,
            ..EpochMetrics::new(epoch + 1, dev.elapsed_secs(), loss)
        });
        if !loss.is_finite() {
            diverged_at = Some(epoch + 1);
            break;
        }
        if stop.is_some_and(|s| loss <= s) {
            timed_out = false;
            break;
        }
        if dev.elapsed_secs() > opts.max_secs {
            break;
        }
    }
    let outcome = RunOutcome::classify(diverged_at, stop.is_some() && !timed_out);
    RunReport {
        label,
        device: DeviceKind::Gpu,
        step_size: alpha,
        trace,
        opt_seconds: dev.elapsed_secs(),
        timed_out,
        metrics,
        outcome,
        best_model: None,
    }
}

/// BIDMach-style synchronous GD with *modeled* CPU time (the paper's
/// machine; same primitive parallelization rules as our implementation).
#[deprecated(note = "dispatch through `run_bidmach` with an engine `Configuration`")]
pub fn run_bidmach_sync_modeled<L: LinearLoss>(
    task: &LinearTask<L>,
    batch: &Batch<'_>,
    mc: &sgd_core::CpuModelConfig,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    sync_modeled(task, batch, mc, alpha, opts)
}

fn sync_modeled<L: LinearLoss>(
    task: &LinearTask<L>,
    batch: &Batch<'_>,
    mc: &sgd_core::CpuModelConfig,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    let mut e = sgd_cpusim::CpuModelExec::new(mc.spec.clone(), mc.threads);
    e.gemm_parallel_threshold = mc.gemm_parallel_threshold;
    let mut eval = CpuExec::seq();
    let mut w = task.init_model();
    let mut g = vec![0.0; task.dim()];
    let mut trace = LossTrace::new();
    trace.push(0.0, task.loss(&mut eval, batch, &w));
    let stop = opts.stop_loss();
    let mut timed_out = stop.is_some();
    let mut diverged_at = None;
    let mut metrics = RunMetrics::default();
    for epoch in 0..opts.max_epochs {
        task.gradient(&mut e, batch, &w, &mut g);
        sgd_linalg::Exec::axpy(&mut e, -alpha, &g, &mut w);
        let loss = task.loss(&mut eval, batch, &w);
        trace.push(e.elapsed_secs(), loss);
        metrics.epochs.push(EpochMetrics::new(epoch + 1, e.elapsed_secs(), loss));
        if !loss.is_finite() {
            diverged_at = Some(epoch + 1);
            break;
        }
        if stop.is_some_and(|s| loss <= s) {
            timed_out = false;
            break;
        }
        if e.elapsed_secs() > opts.max_secs {
            break;
        }
    }
    let outcome = RunOutcome::classify(diverged_at, stop.is_some() && !timed_out);
    RunReport {
        label: format!("BIDMach {} sync {} (modeled)", task.name(), mc.device().label()),
        device: mc.device(),
        step_size: alpha,
        trace,
        opt_seconds: e.elapsed_secs(),
        timed_out,
        metrics,
        outcome,
        best_model: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgd_core::Engine;
    use sgd_datagen::{generate, DatasetProfile, GenOptions};
    use sgd_models::{lr, Examples};

    fn corner(device: DeviceKind) -> Configuration {
        Configuration::new(device, Strategy::Sync)
    }

    #[test]
    fn bidmach_statistics_match_ours() {
        // Same synchronous math: only the GPU kernel layout differs, so
        // the loss trajectory equals our implementation's.
        let ds = generate(&DatasetProfile::w8a().scaled(0.005), &GenOptions::default());
        let task = lr(ds.d());
        let b = Batch::new(Examples::Sparse(&ds.x), &ds.y);
        let opts = RunOptions { max_epochs: 6, ..Default::default() };
        let bid = run_bidmach(&corner(DeviceKind::Gpu), &task, &b, 1.0, &opts);
        let ours = Engine::run(&corner(DeviceKind::Gpu), &task, &b, 1.0, &opts);
        for (p, q) in bid.trace.points().iter().zip(ours.trace.points()) {
            assert!((p.1 - q.1).abs() < 1e-12);
        }
    }

    #[test]
    fn bidmach_gpu_is_slower_than_ours_on_skewed_sparse_data() {
        // The Fig. 8 mechanism: thread-per-row pays divergence on skewed
        // nnz distributions, so BIDMach's simulated GPU epoch costs more.
        let ds = generate(&DatasetProfile::real_sim().scaled(0.002), &GenOptions::default());
        let task = lr(ds.d());
        let b = Batch::new(Examples::Sparse(&ds.x), &ds.y);
        let opts = RunOptions { max_epochs: 4, ..Default::default() };
        let bid = run_bidmach(&corner(DeviceKind::Gpu), &task, &b, 1.0, &opts);
        let ours = Engine::run(&corner(DeviceKind::Gpu), &task, &b, 1.0, &opts);
        assert!(
            bid.time_per_epoch() > ours.time_per_epoch(),
            "bidmach {} vs ours {}",
            bid.time_per_epoch(),
            ours.time_per_epoch()
        );
    }

    #[test]
    fn cpu_paths_run() {
        let ds = generate(&DatasetProfile::w8a().scaled(0.003), &GenOptions::default());
        let task = lr(ds.d());
        let b = Batch::new(Examples::Sparse(&ds.x), &ds.y);
        let opts = RunOptions { max_epochs: 3, threads: 2, ..Default::default() };
        let seq = run_bidmach(&corner(DeviceKind::CpuSeq), &task, &b, 1.0, &opts);
        let par = run_bidmach(&corner(DeviceKind::CpuPar), &task, &b, 1.0, &opts);
        assert_eq!(seq.trace.points().len(), par.trace.points().len());
        for (p, q) in seq.trace.points().iter().zip(par.trace.points()) {
            assert!((p.1 - q.1).abs() < 1e-9);
        }
        assert_eq!(seq.metrics.epochs.len(), seq.trace.epochs());
    }

    #[test]
    #[should_panic(expected = "synchronous GD only")]
    fn asynchronous_corners_are_rejected() {
        let ds = generate(&DatasetProfile::w8a().scaled(0.003), &GenOptions::default());
        let task = lr(ds.d());
        let b = Batch::new(Examples::Sparse(&ds.x), &ds.y);
        let cfg = Configuration::new(DeviceKind::Gpu, Strategy::Hogwild);
        let _ = run_bidmach(&cfg, &task, &b, 1.0, &RunOptions::default());
    }
}
