//! In-tree stand-in for the parts of the `criterion` crate the workspace
//! benches use.
//!
//! The build environment has no network access to crates.io, so this shim
//! provides the same API surface (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros) over a simple harness:
//! each benchmark is auto-calibrated to ~20 ms per sample, run
//! `sample_size` times, and reported as median time per iteration. No
//! statistics beyond that — enough to compare kernels, not to publish.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier combining a function name and a parameter, rendered as
/// `name/param` like upstream criterion.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Builds an id such as `seq/4096`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId { name: name.into(), param: param.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times and records the total duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

const TARGET_SAMPLE: Duration = Duration::from_millis(20);

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Times `f` under `id` and prints the median time per iteration.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibrate: grow the iteration count until one sample is long
        // enough for the clock to resolve it.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (TARGET_SAMPLE.as_secs_f64() / b.elapsed.as_secs_f64()).ceil().min(16.0) as u64
            };
            iters = iters.saturating_mul(grow.max(2));
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let mut b = Bencher { iters, elapsed: Duration::ZERO };
                f(&mut b);
                b.elapsed.as_secs_f64() / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        println!(
            "{}/{}: {} per iter ({} iters x {} samples)",
            self.name,
            id,
            fmt_secs(median),
            iters,
            self.samples
        );
        self
    }

    /// Times `f` with `input` under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream writes reports here; the shim needs no-op).
    pub fn finish(&mut self) {}
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 10, _criterion: self }
    }

    /// Times a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a runner function invoking each benchmark in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(1);
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::new("id", 7), &7usize, |b, &v| {
            b.iter(|| black_box(v));
            seen = v;
        });
        assert_eq!(seen, 7);
        assert_eq!(BenchmarkId::new("id", 7).to_string(), "id/7");
    }
}
